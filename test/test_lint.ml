(* The p2plint analyzer: fixture corpus with seeded violations, report
   determinism, and the repo's own self-lint invariant.

   The fixture corpus lives in test/lint_fixtures (declared as a source_tree
   dependency of this test, so it is present next to the executable); the
   self-lint test walks upward from the working directory to the nearest
   tree that looks like the repo root (dune-project + lib/), which inside
   _build is the sandboxed copy of the sources. *)

let contains_substring haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.equal (String.sub haystack i ln) needle || scan (i + 1)) in
  scan 0

let fixture_root () =
  let candidate = Filename.concat (Sys.getcwd ()) "lint_fixtures" in
  if Sys.file_exists candidate && Sys.is_directory candidate then Some candidate
  else None

let repo_root () =
  let rec search dir =
    if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
      && Sys.is_directory (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else search parent
  in
  search (Sys.getcwd ())

let lint root dirs =
  Lint.Engine.lint_tree ~rules:Lint.Rules.all ~known:Lint.Rules.everything ~root
    ~dirs ()

(* ------------------------------------------------------------------ *)
(* Fixture corpus: exact report over the seeded positives, silence over
   the negatives. *)

let expected_fixture_report =
  "bin/d1_bad.ml:2:14: D1 ambient-nondeterminism: `Random.int` is ambient \
   nondeterminism; thread a seeded Stdx.Prng (or a virtual clock) instead\n\
   bin/d1_bad.ml:4:13: D1 ambient-nondeterminism: `Unix.gettimeofday` is ambient \
   nondeterminism; thread a seeded Stdx.Prng (or a virtual clock) instead\n\
   bin/d1_bad.ml:6:14: D1 ambient-nondeterminism: `Random.self_init` is ambient \
   nondeterminism; thread a seeded Stdx.Prng (or a virtual clock) instead\n\
   bin/d2_bad.ml:2:15: D2 unordered-iteration: Hashtbl.fold visits bindings in \
   nondeterministic bucket order and this accumulator is order-sensitive; use \
   Stdx.Det_tbl.fold_sorted (or sorted_keys / sorted_bindings)\n\
   bin/d2_bad.ml:4:15: D2 unordered-iteration: Hashtbl.iter visits bindings in \
   nondeterministic bucket order; use Stdx.Det_tbl.iter_sorted\n\
   bin/d3_bad.ml:2:17: D3 phys-equal: physical equality (==) depends on value \
   representation; use structural (dis)equality or suppress with the identity \
   argument spelled out\n\
   bin/d3_bad.ml:4:13: D3 phys-equal: `Obj.magic` defeats the type system\n\
   bin/e1_bad.ml:2:39: E1 catch-all-handler: `with _ ->` swallows unexpected \
   exceptions; match the specific exceptions the expression can raise\n\
   bin/e1_bad.ml:4:32: E1 catch-all-handler: `with Failure _ ->` swallows \
   unexpected exceptions; match the specific exceptions the expression can raise\n\
   bin/o1_bad.ml:2:52: O1 metric-naming: metric name \"lookup_count\": must be \
   p2pindex_<subsystem>_<name> in lower_snake_case\n\
   bin/o1_bad.ml:4:54: O1 metric-naming: metric name \
   \"p2pindex_queue_depth_seconds\": gauges take no _total/_seconds unit suffix\n\
   bin/s1_bad.ml:2:0: S1 bad-suppression: suppression of \"phys-equal\" lacks a \
   justification (write \"phys-equal — why it is safe\")\n\
   bin/s1_bad.ml:3:22: D3 phys-equal: physical equality (==) depends on value \
   representation; use structural (dis)equality or suppress with the identity \
   argument spelled out\n\
   lib/h1_bad.ml:1:0: H1 missing-mli: module has no interface; add h1_bad.mli\n\
   p2plint: 14 violations in 7 files (14 files scanned)\n"

let fixtures_exact_report () =
  match fixture_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let files, violations = lint root [ "lib"; "bin" ] in
      let rendered =
        Lint.Report.render_text ~files_scanned:(List.length files) violations
      in
      Alcotest.(check string) "exact text report" expected_fixture_report rendered

let fixtures_negatives_are_clean () =
  match fixture_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let _files, violations = lint root [ "lib"; "bin" ] in
      List.iter
        (fun (v : Lint.Rule.violation) ->
          Alcotest.(check bool)
            (Printf.sprintf "violation only in *_bad fixtures (%s)" v.file)
            false
            (contains_substring v.file "_ok"))
        violations

let fixtures_cover_every_rule () =
  match fixture_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let _files, violations = lint root [ "lib"; "bin" ] in
      let hit code = List.exists (fun (v : Lint.Rule.violation) -> String.equal v.code code) violations in
      List.iter
        (fun code -> Alcotest.(check bool) (code ^ " fires") true (hit code))
        [ "D1"; "D2"; "D3"; "E1"; "H1"; "O1"; "S1" ]

(* ------------------------------------------------------------------ *)
(* Determinism: two full runs render byte-identical reports. *)

let reports_are_deterministic () =
  match fixture_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let render () =
        let files, violations = lint root [ "lib"; "bin" ] in
        let n = List.length files in
        (Lint.Report.render_text ~files_scanned:n violations,
         Lint.Report.render_json ~files_scanned:n violations)
      in
      let text_a, json_a = render () in
      let text_b, json_b = render () in
      Alcotest.(check string) "text byte-identical across runs" text_a text_b;
      Alcotest.(check string) "json byte-identical across runs" json_a json_b;
      Alcotest.(check bool) "json is one line plus newline" true
        (String.length json_a > 0
        && json_a.[String.length json_a - 1] = '\n'
        && not (String.contains (String.sub json_a 0 (String.length json_a - 1)) '\n'));
      Alcotest.(check bool) "json carries the version marker" true
        (contains_substring json_a "\"version\":1")

(* ------------------------------------------------------------------ *)
(* The enforced invariant: the repository lints clean. *)

let repo_self_lints_clean () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let files, violations = lint root Lint.Engine.default_dirs in
      Alcotest.(check bool) "scanned a real tree" true (List.length files > 50);
      let rendered =
        Lint.Report.render_text ~files_scanned:(List.length files) violations
      in
      Alcotest.(check string)
        (Printf.sprintf "repo at %s lints clean" root)
        (Printf.sprintf "p2plint: clean (%d files scanned)\n" (List.length files))
        rendered

(* ------------------------------------------------------------------ *)
(* Typed pass: the P-series over the compiled fixture corpus.  The
   corpus is a dune library (all warnings off) linked into this test
   solely so its .cmt files exist under the build tree before we run. *)

(* Cmt files live in the build tree.  Under `dune runtest` the working
   directory already is the build tree (repo_root finds it); under
   `dune exec` from a source checkout it is the checkout, whose
   artifacts sit under _build/default. *)
let typed_root () =
  match repo_root () with
  | None -> None
  | Some root ->
      let built = Filename.concat root "_build/default" in
      if Sys.file_exists (Filename.concat built "lib") then Some built
      else Some root

let typed_cmt_dir root =
  Filename.concat root "test/lint_fixtures/typed/.lintfx_typed.objs/byte"

let typed_lint root ~cmt_dirs =
  Lint.Typed_engine.run ~rules:Lint.Rules.everything
    ~known:Lint.Rules.everything ~root ~cmt_dirs ()

let typed_fixture_run () =
  match typed_root () with
  | None -> None
  | Some root ->
      let dir = typed_cmt_dir root in
      if Sys.file_exists dir && Sys.is_directory dir then
        Some (typed_lint root ~cmt_dirs:[ dir ])
      else None

let expected_typed_report =
  "test/lint_fixtures/typed/p1_bad.ml:7:17: P1 hot-closure: closure capturing \
   `base` allocates on every call; hoist it to a static function or thread \
   the state through arguments\n\
   test/lint_fixtures/typed/p1_bad.ml:9:34: P1 hot-closure: application of \
   `add3` yields a function — a partial application allocates a closure per \
   call; apply it fully or eta-expand at definition site\n\
   test/lint_fixtures/typed/p2_bad.ml:6:53: P2 polymorphic-compare: `=` at \
   `pair` uses runtime polymorphic comparison; use a monomorphic equivalent \
   (Int.equal, String.compare, a keyed List.exists, ...)\n\
   test/lint_fixtures/typed/p2_bad.ml:8:40: P2 polymorphic-compare: \
   `Hashtbl.hash` at `pair` uses runtime polymorphic comparison; use a \
   monomorphic equivalent (Int.equal, String.compare, a keyed List.exists, \
   ...)\n\
   test/lint_fixtures/typed/p2_bad.ml:10:38: P2 polymorphic-compare: \
   `List.mem` at `pair` uses runtime polymorphic comparison; use a \
   monomorphic equivalent (Int.equal, String.compare, a keyed List.exists, \
   ...)\n\
   test/lint_fixtures/typed/p3_bad.ml:6:29: P3 boxed-allocation: tuple \
   allocated on every call; return components separately or reuse a mutable \
   record\n\
   test/lint_fixtures/typed/p3_bad.ml:8:43: P3 boxed-allocation: `Some` \
   boxes a float argument on every call; keep floats in unboxed positions \
   (float record fields, arrays) or split the value\n\
   test/lint_fixtures/typed/p3_bad.ml:10:36: P3 boxed-allocation: mixed \
   record boxes float field `weight` on every call; use a flat float record, \
   separate arrays, or an int representation\n\
   test/lint_fixtures/typed/p4_bad.ml:4:22: P4 list-per-event: `List.map` \
   builds a fresh list per event; precompute it, use an array, or fold \
   without materializing\n\
   test/lint_fixtures/typed/p4_bad.ml:6:24: P4 list-per-event: `List.filter` \
   builds a fresh list per event; precompute it, use an array, or fold \
   without materializing\n\
   p2plint: 10 violations in 4 files (10 files scanned, 10 cmts)\n"

let typed_render (files, violations) =
  let n = List.length files in
  Lint.Report.render_text ~files_scanned:n ~cmts_loaded:n violations

let typed_fixtures_exact_report () =
  match typed_fixture_run () with
  | None -> Alcotest.skip ()
  | Some run ->
      Alcotest.(check string) "exact typed report" expected_typed_report
        (typed_render run)

let typed_negatives_are_clean () =
  match typed_fixture_run () with
  | None -> Alcotest.skip ()
  | Some (_files, violations) ->
      List.iter
        (fun (v : Lint.Rule.violation) ->
          Alcotest.(check bool)
            (Printf.sprintf "typed violation only in *_bad fixtures (%s)" v.file)
            false
            (contains_substring v.file "_ok" || contains_substring v.file "propagate"))
        violations

let typed_fixtures_cover_every_rule () =
  match typed_fixture_run () with
  | None -> Alcotest.skip ()
  | Some (_files, violations) ->
      let hit code =
        List.exists
          (fun (v : Lint.Rule.violation) -> String.equal v.code code)
          violations
      in
      List.iter
        (fun code -> Alcotest.(check bool) (code ^ " fires") true (hit code))
        [ "P1"; "P2"; "P3"; "P4" ]

let typed_reports_are_deterministic () =
  match typed_root () with
  | None -> Alcotest.skip ()
  | Some root -> (
      match typed_fixture_run () with
      | None -> Alcotest.skip ()
      | Some _ ->
          let render () =
            let files, violations =
              typed_lint root ~cmt_dirs:[ typed_cmt_dir root ]
            in
            let n = List.length files in
            ( Lint.Report.render_text ~files_scanned:n ~cmts_loaded:n violations,
              Lint.Report.render_json ~files_scanned:n ~cmts_loaded:n violations
            )
          in
          let text_a, json_a = render () in
          let text_b, json_b = render () in
          Alcotest.(check string) "typed text byte-identical" text_a text_b;
          Alcotest.(check string) "typed json byte-identical" json_a json_b;
          Alcotest.(check bool) "typed json carries cmts_loaded" true
            (contains_substring json_a "\"cmts_loaded\""))

(* The acceptance fixture for interprocedural [@hot]: one annotated
   driver makes every helper it reaches hot — through nested modules
   and functor bodies — and a local hot binding in a cold owner stands
   alone under its owner's name. *)
let typed_propagation_hot_names () =
  match typed_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let cmt =
        Filename.concat (typed_cmt_dir root) "lintfx_typed__Propagate.cmt"
      in
      if not (Sys.file_exists cmt) then Alcotest.skip ()
      else (
        match Lint.Typed_engine.hot_names_of_cmt cmt with
        | Error message -> Alcotest.fail message
        | Ok names ->
            Alcotest.(check (list string))
              "hot scopes after propagation"
              [
                "Make.Stack.push";
                "Make.Stack.total";
                "Make.cost";
                "Make.drive";
                "cold_owner.inner";
              ]
              names)

(* The typed self-lint invariant: every library cmt in the build tree
   passes the P-series (the CLI run over _build/default enforces the
   same for bin/ and bench/). *)
let typed_repo_self_lints_clean () =
  match typed_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let lib = Filename.concat root "lib" in
      if not (Sys.file_exists lib && Sys.is_directory lib) then
        Alcotest.skip ()
      else begin
        let files, violations = typed_lint root ~cmt_dirs:[ lib ] in
        let n = List.length files in
        Alcotest.(check bool) "loaded a real cmt set" true (n > 20);
        Alcotest.(check string)
          (Printf.sprintf "lib cmts at %s lint clean" root)
          (Printf.sprintf "p2plint: clean (%d files scanned, %d cmts)\n" n n)
          (Lint.Report.render_text ~files_scanned:n ~cmts_loaded:n violations)
      end

(* ------------------------------------------------------------------ *)
(* The README's rule table stays in sync with the registered rule set,
   syntactic and typed alike. *)

let read_whole_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let readme_documents_every_rule () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let readme = Filename.concat root "README.md" in
      if not (Sys.file_exists readme) then Alcotest.skip ()
      else
        let text = read_whole_file readme in
        List.iter
          (fun (r : Lint.Rule.t) ->
            Alcotest.(check bool)
              (Printf.sprintf "README documents %s `%s`" r.code r.id)
              true
              (contains_substring text
                 (Printf.sprintf "| %s | `%s` |" r.code r.id)))
          Lint.Rules.everything

let suite =
  [
    ( "lint:fixtures",
      [
        Alcotest.test_case "exact report over the corpus" `Quick fixtures_exact_report;
        Alcotest.test_case "negatives stay silent" `Quick fixtures_negatives_are_clean;
        Alcotest.test_case "every rule has a firing positive" `Quick fixtures_cover_every_rule;
      ] );
    ( "lint:determinism",
      [ Alcotest.test_case "byte-identical re-renders" `Quick reports_are_deterministic ] );
    ( "lint:self",
      [ Alcotest.test_case "repository lints clean" `Quick repo_self_lints_clean ] );
    ( "lint:typed",
      [
        Alcotest.test_case "exact report over the P corpus" `Quick typed_fixtures_exact_report;
        Alcotest.test_case "typed negatives stay silent" `Quick typed_negatives_are_clean;
        Alcotest.test_case "every P rule has a firing positive" `Quick typed_fixtures_cover_every_rule;
        Alcotest.test_case "typed reports byte-identical" `Quick typed_reports_are_deterministic;
        Alcotest.test_case "[@hot] propagates through the call graph" `Quick typed_propagation_hot_names;
        Alcotest.test_case "library cmts lint clean" `Quick typed_repo_self_lints_clean;
      ] );
    ( "lint:docs",
      [ Alcotest.test_case "README rule table matches the rule set" `Quick readme_documents_every_rule ] );
  ]

(* The quorum layer's contract: version vectors form a join-semilattice
   (so anti-entropy converges in any exchange order), tombstones keep a
   remove from being resurrected by repair or anti-entropy, digests
   agree exactly when the canonical bindings agree, quorum reads
   reconcile and read-repair divergence, and at the runner level the
   inactive quorum block degenerates byte-for-byte to the historical
   first-live-replica run while raising R monotonically masks stale
   reads under churn. *)

module Key = Hashing.Key
module Version = Storage.Version
module Replicated = Storage.Replicated_store
module Anti_entropy = Storage.Anti_entropy

let resolver n =
  Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:5L ~node_count:n ())

let k s = Key.of_string s

(* ------------------------------------------------------------------ *)
(* Version vectors: semilattice laws and causal comparison. *)

(* Vectors are abstract; build them the only way writes do — by bumping
   actor dots — from a generated (actor, bumps) event list. *)
let vec_of events =
  List.fold_left
    (fun v (actor, bumps) ->
      let rec go v i = if i = 0 then v else go (Version.bump v ~actor) (i - 1) in
      go v bumps)
    Version.zero events

let events_arb =
  QCheck.(
    set_print
      (fun evs -> Version.to_string (vec_of evs))
      (small_list (pair (int_bound 8) (int_range 1 4))))

let version_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:300
    QCheck.(pair events_arb events_arb)
    (fun (ea, eb) ->
      let a = vec_of ea and b = vec_of eb in
      Version.equal (Version.merge a b) (Version.merge b a))

let version_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:300
    QCheck.(triple events_arb events_arb events_arb)
    (fun (ea, eb, ec) ->
      let a = vec_of ea and b = vec_of eb and c = vec_of ec in
      Version.equal
        (Version.merge a (Version.merge b c))
        (Version.merge (Version.merge a b) c))

let version_merge_idempotent =
  QCheck.Test.make ~name:"merge is idempotent" ~count:300 events_arb
    (fun ea ->
      let a = vec_of ea in
      Version.equal (Version.merge a a) a)

let version_merge_is_upper_bound =
  QCheck.Test.make ~name:"merge dominates both arguments" ~count:300
    QCheck.(pair events_arb events_arb)
    (fun (ea, eb) ->
      let a = vec_of ea and b = vec_of eb in
      let m = Version.merge a b in
      Version.well_formed m
      && Version.dominates_or_eq m a
      && Version.dominates_or_eq m b)

let version_render_faithful =
  QCheck.Test.make ~name:"to_string equality coincides with equal" ~count:300
    QCheck.(pair events_arb events_arb)
    (fun (ea, eb) ->
      let a = vec_of ea and b = vec_of eb in
      Version.equal a b = String.equal (Version.to_string a) (Version.to_string b))

let relation = function
  | Version.Eq -> "eq"
  | Version.Dominates -> "dominates"
  | Version.Dominated -> "dominated"
  | Version.Concurrent -> "concurrent"

let version_compare_units () =
  let a = Version.bump Version.zero ~actor:0 in
  let b = Version.bump Version.zero ~actor:1 in
  Alcotest.(check string) "zero = zero" "eq" (relation (Version.compare Version.zero Version.zero));
  Alcotest.(check string) "a = a" "eq" (relation (Version.compare a a));
  Alcotest.(check string) "one bump dominates zero" "dominates"
    (relation (Version.compare a Version.zero));
  Alcotest.(check string) "zero dominated by one bump" "dominated"
    (relation (Version.compare Version.zero a));
  Alcotest.(check string) "disjoint actors are concurrent" "concurrent"
    (relation (Version.compare a b));
  Alcotest.(check string) "merge dominates a branch" "dominates"
    (relation (Version.compare (Version.merge a b) a));
  Alcotest.(check int) "counter reads the dot" 1 (Version.counter a ~actor:0);
  Alcotest.(check int) "absent actor counts zero" 0 (Version.counter a ~actor:7);
  Alcotest.(check int) "zero has no dots" 0 (Version.dots Version.zero);
  Alcotest.(check int) "two actors, two dots" 2 (Version.dots (Version.merge a b));
  Alcotest.(check bool) "negative actor rejected" true
    (try ignore (Version.bump Version.zero ~actor:(-1) : Version.t); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Digests: equal bindings, equal digest — and nothing else.  Bindings
   are canonical single-line renders, so the generator stays away from
   the newline the digest joins on. *)

let binding_arb =
  QCheck.(
    small_list
      (string_gen_of_size (Gen.int_range 1 8) (Gen.char_range 'a' 'z')))

let digest_equality_property =
  QCheck.Test.make ~name:"digests agree exactly when the bindings agree"
    ~count:400
    QCheck.(pair binding_arb binding_arb)
    (fun (a, b) ->
      String.equal (Anti_entropy.digest a) (Anti_entropy.digest b) = (a = b))

let range_digest_tracks_state () =
  let r = resolver 8 in
  let store : string Replicated.t =
    Replicated.create ~resolver:r ~replication:3 ()
  in
  Replicated.insert store ~key:(k "shared") "x";
  let nodes = Dht.Resolver.replicas r (k "shared") 3 in
  let digest_at node =
    Anti_entropy.range_digest store ~node ~keys:[ k "shared" ]
      ~render:(fun s -> s)
  in
  (match nodes with
  | a :: b :: _ ->
      Alcotest.(check string) "replicas of one write digest equally"
        (Hashing.Sha1.to_hex (digest_at a))
        (Hashing.Sha1.to_hex (digest_at b));
      (* One replica sleeps through a write: digests diverge. *)
      Replicated.fail_node store b;
      Replicated.insert store ~key:(k "shared") "y";
      Replicated.revive_node store b;
      Alcotest.(check bool) "a lagging replica digests differently" false
        (String.equal (digest_at a) (digest_at b))
  | _ -> Alcotest.fail "expected three replicas")

(* ------------------------------------------------------------------ *)
(* Tombstones: the stale-entry resurrection regression.  A replica that
   sleeps through a remove keeps its copy; historically the repair walk
   re-homed that copy onto the replicas that had correctly dropped it,
   resurrecting the deletion.  Tombstones fence the remove, and
   anti-entropy retires the stale copy outright. *)

let tombstones_block_resurrection () =
  let r = resolver 10 in
  let store : string Replicated.t =
    Replicated.create ~resolver:r ~replication:3 ()
  in
  Replicated.insert store ~key:(k "doomed") "entry";
  let replicas = Dht.Resolver.replicas r (k "doomed") 3 in
  let sleeper = List.nth replicas 2 in
  Replicated.fail_node store sleeper;
  Alcotest.(check int) "removed on the live replicas" 1
    (Replicated.remove store ~key:(k "doomed") (fun _ -> true));
  Replicated.revive_node store sleeper;
  (* The nap preserved the replica's (now stale) copy. *)
  Alcotest.(check (list string)) "stale copy survives the nap" [ "entry" ]
    (Replicated.entry_values store ~node:sleeper (k "doomed"));
  Alcotest.(check bool) "the stale copy is visible as availability" true
    (Replicated.mem store (k "doomed"));
  (* The pinned fix: repair must not re-home the tombstoned entry. *)
  let restored = ref 0 in
  ignore
    (Replicated.repair ~on_restore:(fun ~node:_ _ -> incr restored) store : int);
  Alcotest.(check int) "repair resurrects nothing" 0 !restored;
  List.iter
    (fun node ->
      if node <> sleeper then
        Alcotest.(check (list string))
          (Printf.sprintf "node %d stays clean" node)
          []
          (Replicated.entry_values store ~node (k "doomed")))
    replicas;
  (* Anti-entropy converges the other way: the merged (tombstoned)
     state dominates, so the sleeper drops its copy and gains nothing. *)
  let gained = Replicated.sync_key store ~key:(k "doomed") ~nodes:replicas in
  List.iter
    (fun (_, values) ->
      Alcotest.(check (list string)) "sync ships no values" [] values)
    gained;
  Alcotest.(check (list string)) "stale copy retired" []
    (Replicated.entry_values store ~node:sleeper (k "doomed"));
  Alcotest.(check bool) "the remove finally sticks everywhere" false
    (Replicated.mem store (k "doomed"))

(* ------------------------------------------------------------------ *)
(* Quorum reads, write acknowledgements, store validation. *)

let quorum_read_reconciles () =
  let r = resolver 10 in
  let store : string Replicated.t =
    Replicated.create ~resolver:r ~replication:3 ~read_quorum:2 ()
  in
  Alcotest.(check int) "read quorum recorded" 2 (Replicated.read_quorum store);
  Alcotest.(check int) "write quorum defaults to replication" 3
    (Replicated.write_quorum store);
  Replicated.insert store ~key:(k "a") "old";
  let replicas = Dht.Resolver.replicas r (k "a") 3 in
  let sleeper = List.nth replicas 1 in
  Replicated.fail_node store sleeper;
  Replicated.insert store ~key:(k "a") "new";
  Replicated.revive_node store sleeper;
  Alcotest.(check string) "sleeper causally behind" "dominated"
    (relation
       (Version.compare
          (Replicated.version_at store ~node:sleeper (k "a"))
          (Replicated.live_merged_version store (k "a"))));
  let values, version, repairs =
    Replicated.quorum_read store ~key:(k "a") ~nodes:replicas
  in
  Alcotest.(check (list string)) "merged values, most recent first"
    [ "new"; "old" ]
    values;
  Alcotest.(check string) "merged version is the live upper bound" "eq"
    (relation
       (Version.compare version (Replicated.live_merged_version store (k "a"))));
  (match repairs with
  | [ (node, gained) ] ->
      Alcotest.(check int) "the sleeper was repaired" sleeper node;
      Alcotest.(check (list string)) "it gained the missed write" [ "new" ] gained
  | _ -> Alcotest.fail "expected exactly one repaired replica");
  (* After the read repair every replica agrees. *)
  Alcotest.(check string) "sleeper caught up" "eq"
    (relation
       (Version.compare
          (Replicated.version_at store ~node:sleeper (k "a"))
          (Replicated.live_merged_version store (k "a"))));
  let _, _, again = Replicated.quorum_read store ~key:(k "a") ~nodes:replicas in
  Alcotest.(check int) "second read repairs nothing" 0 (List.length again)

let write_acknowledgement_counting () =
  let r = resolver 10 in
  let acks = ref [] in
  let store : string Replicated.t =
    Replicated.create ~resolver:r ~replication:3 ~write_quorum:2
      ~on_write_acks:(fun ~acks:a ~needed -> acks := (a, needed) :: !acks)
      ()
  in
  Replicated.insert store ~key:(k "a") "x";
  Alcotest.(check (list (pair int int))) "fully acknowledged" [ (3, 2) ] !acks;
  acks := [];
  let replicas = Dht.Resolver.replicas r (k "a") 3 in
  List.iter (Replicated.fail_node store) (List.tl replicas);
  Replicated.insert store ~key:(k "a") "y";
  Alcotest.(check (list (pair int int))) "under-acknowledged write reported"
    [ (1, 2) ] !acks

let store_quorum_validation () =
  let rejects f =
    try ignore (f () : string Replicated.t); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "read quorum above replication rejected" true
    (rejects (fun () ->
         Replicated.create ~resolver:(resolver 6) ~replication:3 ~read_quorum:4 ()));
  Alcotest.(check bool) "zero write quorum rejected" true
    (rejects (fun () ->
         Replicated.create ~resolver:(resolver 6) ~replication:3 ~write_quorum:0 ()))

(* ------------------------------------------------------------------ *)
(* Anti-entropy pass: diverged replicas converge, the digest scheme
   beats full-state push-pull, and a converged store is quiescent. *)

let anti_entropy_converges () =
  let r = resolver 8 in
  let store : string Replicated.t =
    Replicated.create ~resolver:r ~replication:3 ()
  in
  for i = 1 to 30 do
    Replicated.insert store
      ~key:(k (Printf.sprintf "key-%d" i))
      (Printf.sprintf "value-%d" i)
  done;
  let key = k "drifted" in
  Replicated.insert store ~key "old";
  let sleeper = List.nth (Dht.Resolver.replicas r key 3) 1 in
  Replicated.fail_node store sleeper;
  Replicated.insert store ~key "new";
  Replicated.revive_node store sleeper;
  let render s = s and entry_bytes s = 100 + String.length s in
  let exchanges = ref 0 and shipped_to = ref [] in
  let stats =
    Anti_entropy.run store ~render ~entry_bytes
      ~on_exchange:(fun ~peer:_ ~bytes:_ -> incr exchanges)
      ~on_ship:(fun ~node ~bytes:_ -> shipped_to := node :: !shipped_to)
      ()
  in
  Alcotest.(check int) "every exchange billed" stats.exchanges !exchanges;
  Alcotest.(check (list int)) "only the sleeper gained entries" [ sleeper ]
    !shipped_to;
  Alcotest.(check int) "one key diverged" 1 stats.keys_shipped;
  Alcotest.(check int) "one entry shipped" 1 stats.entries_shipped;
  Alcotest.(check bool) "most digests matched" true
    (stats.digest_matches > 0 && stats.digest_matches < stats.exchanges);
  Alcotest.(check bool) "digests + shipped beat full-state push-pull" true
    (stats.digest_bytes + stats.shipped_bytes < stats.full_state_bytes);
  Alcotest.(check (list string)) "sleeper caught up" [ "new"; "old" ]
    (Replicated.entry_values store ~node:sleeper key);
  (* Convergence is a fixed point: a second pass matches everywhere and
     ships nothing. *)
  let again = Anti_entropy.run store ~render ~entry_bytes () in
  Alcotest.(check int) "second pass: every digest matches" again.exchanges
    again.digest_matches;
  Alcotest.(check int) "second pass ships nothing" 0 again.entries_shipped;
  (* Componentwise aggregation. *)
  let sum = Anti_entropy.add stats again in
  Alcotest.(check int) "stats add componentwise"
    (stats.exchanges + again.exchanges) sum.exchanges

(* ------------------------------------------------------------------ *)
(* Runner: the degeneration equality and the R-sweep monotonicity the
   issue pins. *)

let churned_base =
  {
    Sim.Runner.default_config with
    node_count = 50;
    article_count = 400;
    query_count = 800;
    scheme = Bib.Schemes.Simple;
    churn =
      Some
        { Sim.Runner.default_churn with churn_rate = 0.01; replication = 3 };
  }

(* The hard degeneration claim: R = 1, W = replication, anti-entropy off
   must reproduce the quorum-free run byte for byte — traffic, placement
   and the metrics snapshot. *)
let quorum_inactive_equals_plain () =
  let inactive =
    { Sim.Runner.read_quorum = 1; write_quorum = 3; anti_entropy_interval = 0.0 }
  in
  Alcotest.(check bool) "R=1/W=N/no-AE block is inactive" false
    (Sim.Runner.quorum_active { churned_base with quorum = Some inactive });
  let plain = Sim.Runner.run churned_base in
  let quorumed =
    Sim.Runner.run { churned_base with quorum = Some inactive }
  in
  let check_int what f = Alcotest.(check int) what (f plain) (f quorumed) in
  let open Sim.Runner in
  check_int "request bytes" (fun r -> r.request_bytes);
  check_int "response bytes" (fun r -> r.response_bytes);
  check_int "cache bytes" (fun r -> r.cache_bytes);
  check_int "maintenance bytes" (fun r -> r.maintenance_bytes);
  check_int "publish bytes" (fun r -> r.publish_bytes);
  check_int "network messages" (fun r -> r.network_messages);
  check_int "hits" (fun r -> r.hits);
  check_int "errors" (fun r -> r.errors);
  check_int "unreachable" (fun r -> r.unreachable);
  check_int "rpc calls" (fun r -> r.rpc_calls);
  check_int "quorum reads stay zero" (fun r -> r.quorum_reads);
  check_int "quorum writes stay zero" (fun r -> r.quorum_writes);
  check_int "anti-entropy stays off" (fun r -> r.antientropy_rounds);
  Alcotest.(check (array int)) "per-node touches" plain.node_touches
    quorumed.node_touches;
  Alcotest.(check (array int)) "per-node cached keys" plain.cached_keys
    quorumed.cached_keys;
  Alcotest.(check string) "metrics snapshot byte-identical"
    (Obs.Export.render_table plain.metrics)
    (Obs.Export.render_table quorumed.metrics)

let quorum_validation () =
  let rejects cfg =
    try ignore (Sim.Runner.run cfg : Sim.Runner.report); false
    with Invalid_argument _ -> true
  in
  let with_quorum q = { churned_base with quorum = Some q } in
  Alcotest.(check bool) "R above replication rejected" true
    (rejects
       (with_quorum
          { Sim.Runner.read_quorum = 4; write_quorum = 3; anti_entropy_interval = 0.0 }));
  Alcotest.(check bool) "W of zero rejected" true
    (rejects
       (with_quorum
          { Sim.Runner.read_quorum = 1; write_quorum = 0; anti_entropy_interval = 0.0 }));
  Alcotest.(check bool) "negative anti-entropy interval rejected" true
    (rejects
       (with_quorum
          { Sim.Runner.read_quorum = 1; write_quorum = 3; anti_entropy_interval = -1.0 }));
  Alcotest.(check bool) "anti-entropy without churn rejected" true
    (rejects
       {
         churned_base with
         churn = None;
         faults = Some { Sim.Runner.default_faults with fault_replication = 3 };
         quorum =
           Some
             { Sim.Runner.read_quorum = 1; write_quorum = 3; anti_entropy_interval = 5.0 };
       })

(* The issue's acceptance sweep, in miniature: at a fixed churn rate the
   stale-read rate must fall monotonically as R rises, and the digest
   scheme must move fewer bytes than full-state push-pull on the same
   divergence.  The run needs enough virtual time (query_count over
   query_rate) to span several republish rounds — writes during a
   replica's downtime are what create the staleness quorum reads mask. *)
let quorum_reads_mask_staleness () =
  let base =
    {
      Sim.Runner.default_config with
      node_count = 100;
      article_count = 800;
      query_count = 6_000;
      scheme = Bib.Schemes.Simple;
      churn =
        Some
          {
            Sim.Runner.default_churn with
            churn_rate = 0.02;
            replication = 3;
            republish_period = 20.0;
          };
    }
  in
  let run read_quorum =
    Sim.Runner.run
      {
        base with
        quorum =
          Some
            { Sim.Runner.read_quorum; write_quorum = 3; anti_entropy_interval = 10.0 };
      }
  in
  let r1 = run 1 and r2 = run 2 and r3 = run 3 in
  let rate = Sim.Runner.stale_read_rate in
  Alcotest.(check bool) "R=1 observes stale reads" true (rate r1 > 0.0);
  Alcotest.(check bool) "R=2 masks staleness at least as well" true
    (rate r2 <= rate r1);
  Alcotest.(check bool) "R=3 masks staleness at least as well" true
    (rate r3 <= rate r2);
  Alcotest.(check bool) "wider quorums read-repair laggards" true
    (r2.Sim.Runner.quorum_read_repairs > 0);
  List.iter
    (fun (r : Sim.Runner.report) ->
      Alcotest.(check bool) "quorum reads counted" true (r.quorum_reads > 0);
      Alcotest.(check bool) "writes counted against W" true (r.quorum_writes > 0);
      Alcotest.(check bool) "anti-entropy ran" true (r.antientropy_rounds > 0);
      Alcotest.(check bool) "digests beat full-state push-pull" true
        (r.antientropy_digest_bytes + r.antientropy_shipped_bytes
        < r.antientropy_full_state_bytes))
    [ r1; r2; r3 ]

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "quorum:version",
      Alcotest.test_case "causal comparison and accessors" `Quick
        version_compare_units
      :: qcheck
           [
             version_merge_commutative;
             version_merge_associative;
             version_merge_idempotent;
             version_merge_is_upper_bound;
             version_render_faithful;
           ] );
    ( "quorum:digest",
      Alcotest.test_case "range digests track replica state" `Quick
        range_digest_tracks_state
      :: qcheck [ digest_equality_property ] );
    ( "quorum:store",
      [
        Alcotest.test_case "tombstones block stale-entry resurrection" `Quick
          tombstones_block_resurrection;
        Alcotest.test_case "quorum read reconciles and read-repairs" `Quick
          quorum_read_reconciles;
        Alcotest.test_case "write acknowledgements counted against W" `Quick
          write_acknowledgement_counting;
        Alcotest.test_case "quorum bounds validated" `Quick store_quorum_validation;
      ] );
    ( "quorum:anti-entropy",
      [
        Alcotest.test_case "diverged replicas converge below full-state cost"
          `Quick anti_entropy_converges;
      ] );
    ( "quorum:runner",
      [
        Alcotest.test_case "inactive quorum = plain run, byte for byte" `Quick
          quorum_inactive_equals_plain;
        Alcotest.test_case "nonsensical quorum configs rejected" `Quick
          quorum_validation;
        Alcotest.test_case "raising R masks stale reads monotonically" `Slow
          quorum_reads_mask_staleness;
      ] );
  ]

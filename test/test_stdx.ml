(* Tests for the deterministic PRNG, power-law samplers, statistics and the
   table renderer. *)

let prng_deterministic () =
  let a = Stdx.Prng.create ~seed:42L in
  let b = Stdx.Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stdx.Prng.next_int64 a) (Stdx.Prng.next_int64 b)
  done

let prng_copy_independent () =
  let a = Stdx.Prng.create ~seed:7L in
  let _ = Stdx.Prng.next_int64 a in
  let b = Stdx.Prng.copy a in
  let va = Stdx.Prng.next_int64 a in
  let vb = Stdx.Prng.next_int64 b in
  Alcotest.(check int64) "copy continues the stream" va vb;
  (* Advancing the copy further must not disturb the original. *)
  let _ = Stdx.Prng.next_int64 b in
  let _ = Stdx.Prng.next_int64 b in
  let va2 = Stdx.Prng.next_int64 a in
  let a' = Stdx.Prng.create ~seed:7L in
  let _ = Stdx.Prng.next_int64 a' in
  let _ = Stdx.Prng.next_int64 a' in
  Alcotest.(check int64) "original unaffected by copy" (Stdx.Prng.next_int64 a') va2

let prng_split_differs () =
  let a = Stdx.Prng.create ~seed:1L in
  let b = Stdx.Prng.split a in
  let va = Stdx.Prng.next_int64 a in
  let vb = Stdx.Prng.next_int64 b in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal va vb))

let prng_int_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Stdx.Prng.create ~seed:(Int64.of_int seed) in
      let v = Stdx.Prng.int g bound in
      v >= 0 && v < bound)

let prng_int_in_range =
  QCheck.Test.make ~name:"Prng.int_in_range inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let hi = lo + span in
      let g = Stdx.Prng.create ~seed:(Int64.of_int seed) in
      let v = Stdx.Prng.int_in_range g ~lo ~hi in
      v >= lo && v <= hi)

let prng_unit_float_range =
  QCheck.Test.make ~name:"Prng.unit_float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let g = Stdx.Prng.create ~seed:(Int64.of_int seed) in
      let v = Stdx.Prng.unit_float g in
      v >= 0.0 && v < 1.0)

let prng_int_rejects_zero () =
  let g = Stdx.Prng.create ~seed:3L in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Stdx.Prng.int g 0))

let prng_uniformity () =
  (* A chi-squared-flavoured sanity check: 10 buckets, 20k draws; each bucket
     should be within 10% of the expectation. *)
  let g = Stdx.Prng.create ~seed:99L in
  let counts = Array.make 10 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let v = Stdx.Prng.int g 10 in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = draws / 10 in
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket count %d near %d" c expected)
        true
        (abs (c - expected) < expected / 10))
    counts

let prng_choose_weighted () =
  let g = Stdx.Prng.create ~seed:5L in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let x = Stdx.Prng.choose_weighted g [ ("a", 0.8); ("b", 0.15); ("c", 0.05) ] in
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let count k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "a dominates" true (count "a" > 7_500 && count "a" < 8_500);
  Alcotest.(check bool) "c is rare" true (count "c" > 250 && count "c" < 750)

let prng_shuffle_permutes () =
  let g = Stdx.Prng.create ~seed:11L in
  let a = Array.init 50 (fun i -> i) in
  Stdx.Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

let prng_argument_validation () =
  let g = Stdx.Prng.create ~seed:1L in
  Alcotest.check_raises "empty range" (Invalid_argument "Prng.int_in_range: empty range")
    (fun () -> ignore (Stdx.Prng.int_in_range g ~lo:5 ~hi:4));
  Alcotest.check_raises "empty array" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Stdx.Prng.pick g ([||] : int array)));
  Alcotest.check_raises "empty list" (Invalid_argument "Prng.pick_list: empty list")
    (fun () -> ignore (Stdx.Prng.pick_list g ([] : int list)));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Prng.choose_weighted: non-positive weight") (fun () ->
      ignore (Stdx.Prng.choose_weighted g [ ("a", -1.0) ]))

let power_law_validation () =
  Alcotest.check_raises "fitted n > 0"
    (Invalid_argument "Power_law.fitted_cdf: n must be positive") (fun () ->
      ignore (Stdx.Power_law.fitted_cdf ~n:0 ()));
  Alcotest.check_raises "zipf n > 0" (Invalid_argument "Power_law.zipf: n must be positive")
    (fun () -> ignore (Stdx.Power_law.zipf ~s:1.0 ~n:(-1)));
  let t = Stdx.Power_law.zipf ~s:1.0 ~n:10 in
  Alcotest.(check int) "support" 10 (Stdx.Power_law.support t);
  Alcotest.(check (float 1e-9)) "probability outside support" 0.0
    (Stdx.Power_law.probability t 11);
  Alcotest.(check (float 1e-9)) "cdf below support" 0.0 (Stdx.Power_law.cdf t 0);
  Alcotest.(check (float 1e-9)) "cdf above support" 1.0 (Stdx.Power_law.cdf t 99)

let power_law_paper_pmf () =
  (* The paper's fitted model: the top-ranked article has CDF c = 0.063, so
     its probability is close to 0.063 after normalization. *)
  let t = Stdx.Power_law.fitted_cdf ~n:10_000 () in
  let p1 = Stdx.Power_law.probability t 1 in
  Alcotest.(check bool) "p(1) near 0.063" true (Float.abs (p1 -. 0.063) < 0.002)

let power_law_cdf_monotone =
  QCheck.Test.make ~name:"Power_law cdf monotone" ~count:200
    QCheck.(pair (int_range 1 9_999) (int_range 1 100))
    (fun (i, step) ->
      let t = Stdx.Power_law.fitted_cdf ~n:10_000 () in
      Stdx.Power_law.cdf t i <= Stdx.Power_law.cdf t (i + step) +. 1e-12)

let power_law_pmf_sums_to_one () =
  let t = Stdx.Power_law.fitted_cdf ~n:1_000 () in
  let total = ref 0.0 in
  for i = 1 to 1_000 do
    total := !total +. Stdx.Power_law.probability t i
  done;
  Alcotest.(check bool) "pmf sums to 1" true (Float.abs (!total -. 1.0) < 1e-9)

let power_law_sample_in_support =
  QCheck.Test.make ~name:"Power_law.sample in support" ~count:500 QCheck.small_int
    (fun seed ->
      let t = Stdx.Power_law.zipf ~s:1.0 ~n:100 in
      let g = Stdx.Prng.create ~seed:(Int64.of_int seed) in
      let v = Stdx.Power_law.sample t g in
      v >= 1 && v <= 100)

let power_law_sample_skewed () =
  let t = Stdx.Power_law.fitted_cdf ~n:10_000 () in
  let g = Stdx.Prng.create ~seed:123L in
  let top = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    if Stdx.Power_law.sample t g = 1 then incr top
  done;
  let observed = float_of_int !top /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "rank-1 frequency %.4f near 0.063" observed)
    true
    (Float.abs (observed -. 0.063) < 0.01)

let power_law_ccdf_matches_paper () =
  (* F̄(i) = 1 - 0.063 i^0.3, checked at a few ranks before the clamp. *)
  let t = Stdx.Power_law.fitted_cdf ~n:10_000 () in
  List.iter
    (fun i ->
      let expected = 1.0 -. (0.063 *. (float_of_int i ** 0.3)) in
      let actual = Stdx.Power_law.ccdf t i in
      Alcotest.(check bool)
        (Printf.sprintf "ccdf(%d) = %.4f vs paper %.4f" i actual expected)
        true
        (Float.abs (actual -. expected) < 0.01))
    [ 1; 10; 100; 1_000; 5_000 ]

let zipf_head_heavier_than_tail () =
  let t = Stdx.Power_law.zipf ~s:1.2 ~n:500 in
  Alcotest.(check bool) "p(1) > p(100)" true
    (Stdx.Power_law.probability t 1 > 10.0 *. Stdx.Power_law.probability t 100)

let summary_mean_variance () =
  let s = Stdx.Stats.Summary.create () in
  List.iter (Stdx.Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stdx.Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" 4.0 (Stdx.Stats.Summary.variance s);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stdx.Stats.Summary.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stdx.Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stdx.Stats.Summary.max s);
  Alcotest.(check int) "count" 8 (Stdx.Stats.Summary.count s)

let summary_merge_equals_union =
  QCheck.Test.make ~name:"Summary.merge = union stream" ~count:200
    QCheck.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] && ys <> []);
      let a = Stdx.Stats.Summary.create () in
      let b = Stdx.Stats.Summary.create () in
      let u = Stdx.Stats.Summary.create () in
      List.iter (Stdx.Stats.Summary.add a) xs;
      List.iter (Stdx.Stats.Summary.add b) ys;
      List.iter (Stdx.Stats.Summary.add u) (xs @ ys);
      let m = Stdx.Stats.Summary.merge a b in
      Float.abs (Stdx.Stats.Summary.mean m -. Stdx.Stats.Summary.mean u) < 1e-6
      && Float.abs (Stdx.Stats.Summary.variance m -. Stdx.Stats.Summary.variance u) < 1e-6
      && Stdx.Stats.Summary.count m = Stdx.Stats.Summary.count u)

let summary_empty () =
  let s = Stdx.Stats.Summary.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stdx.Stats.Summary.mean s);
  Alcotest.(check (float 0.0)) "variance of empty" 0.0 (Stdx.Stats.Summary.variance s)

let percentile_basics () =
  let values = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "median" 35.0 (Stdx.Stats.percentile values 50.0);
  Alcotest.(check (float 1e-9)) "p0 = min" 15.0 (Stdx.Stats.percentile values 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 50.0 (Stdx.Stats.percentile values 100.0)

let gini_cases () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stdx.Stats.gini [||]);
  Alcotest.(check (float 1e-9)) "all zero" 0.0 (Stdx.Stats.gini [| 0.0; 0.0 |]);
  Alcotest.(check (float 1e-9)) "perfectly balanced" 0.0
    (Stdx.Stats.gini [| 5.0; 5.0; 5.0; 5.0 |]);
  (* One of four nodes carries everything: G = (n-1)/n = 0.75. *)
  Alcotest.(check (float 1e-9)) "maximally skewed" 0.75
    (Stdx.Stats.gini [| 0.0; 0.0; 0.0; 10.0 |]);
  let skewed = Stdx.Stats.gini [| 1.0; 2.0; 3.0; 10.0 |] in
  Alcotest.(check bool) "partial skew strictly between" true (skewed > 0.0 && skewed < 0.75)

let gini_bounded =
  QCheck.Test.make ~name:"gini in [0, 1)" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_range 0.0 100.0))
    (fun values ->
      let g = Stdx.Stats.gini (Array.of_list values) in
      g >= -1e-9 && g < 1.0)

let linear_fit_exact () =
  let slope, intercept = Stdx.Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept

let linear_fit_recovers_power_law () =
  (* Fit log p(i) against log i for a Zipf(s = 0.7): slope should be -0.7. *)
  let t = Stdx.Power_law.zipf ~s:0.7 ~n:1_000 in
  let points =
    List.init 100 (fun i ->
        let rank = (i * 10) + 1 in
        (log (float_of_int rank), log (Stdx.Power_law.probability t rank)))
  in
  let slope, _ = Stdx.Stats.linear_fit points in
  Alcotest.(check bool)
    (Printf.sprintf "slope %.3f near -0.7" slope)
    true
    (Float.abs (slope +. 0.7) < 0.02)

let histogram_buckets () =
  let h = Stdx.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Stdx.Stats.Histogram.add h) [ 0.5; 1.0; 3.0; 9.9; 11.0; -1.0 ];
  Alcotest.(check int) "total" 6 (Stdx.Stats.Histogram.total h);
  Alcotest.(check int) "first bucket catches low outlier" 3 (Stdx.Stats.Histogram.count h 0);
  Alcotest.(check int) "last bucket catches high outlier" 2 (Stdx.Stats.Histogram.count h 4);
  let lo, hi = Stdx.Stats.Histogram.bucket_range h 1 in
  Alcotest.(check (float 1e-9)) "bucket lo" 2.0 lo;
  Alcotest.(check (float 1e-9)) "bucket hi" 4.0 hi

let table_rendering () =
  let rendered =
    Stdx.Tabular.render_table ~headers:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length rendered > 0
    && String.sub rendered 0 1 = "|"
    && String.length (String.concat "" (String.split_on_char '\n' rendered)) > 10)

let table_arity_checked () =
  Alcotest.check_raises "row arity mismatch"
    (Invalid_argument "Tabular.render_table: row arity mismatch") (fun () ->
      ignore (Stdx.Tabular.render_table ~headers:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let fmt_bytes_units () =
  Alcotest.(check string) "bytes" "512 B" (Stdx.Tabular.fmt_bytes 512.0);
  Alcotest.(check string) "kilobytes" "2.00 KB" (Stdx.Tabular.fmt_bytes 2048.0);
  Alcotest.(check string) "megabytes" "1.50 MB" (Stdx.Tabular.fmt_bytes (1.5 *. 1024.0 *. 1024.0))

(* --- Arena: the dense-id allocator behind the per-node hot state. --- *)

module Arena = Stdx.Arena

let expect_invalid what f =
  Alcotest.(check bool) what true
    (match f () with _ -> false | exception Invalid_argument _ -> true)

let arena_lifo_reuse () =
  let a = Arena.create ~capacity:2 () in
  let i0 = Arena.alloc a in
  let i1 = Arena.alloc a in
  let i2 = Arena.alloc a in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2 ] [ i0; i1; i2 ];
  Alcotest.(check int) "live" 3 (Arena.live a);
  Arena.free a i1;
  Alcotest.(check bool) "freed id not in use" false (Arena.in_use a i1);
  Alcotest.(check int) "LIFO: last freed comes back first" i1 (Arena.alloc a);
  Arena.free a i2;
  Arena.free a i0;
  Alcotest.(check int) "free stack order" i0 (Arena.alloc a);
  Alcotest.(check int) "then the earlier free" i2 (Arena.alloc a);
  Alcotest.(check int) "fresh id past the recycled ones" 3 (Arena.alloc a);
  Alcotest.(check int) "live again" 4 (Arena.live a)

let arena_columns_grow_in_lockstep () =
  let a = Arena.create ~capacity:2 () in
  let ints = Arena.Int_col.make a ~default:7 in
  let floats = Arena.Float_col.make a ~default:1.5 in
  let slots = Arena.Slots.make a ~dummy:"" in
  (* Push well past the initial capacity: every attached column must keep
     up, and fresh ids must read their defaults. *)
  let ids = Array.init 40 (fun _ -> Arena.alloc a) in
  Alcotest.(check bool) "capacity grew" true (Arena.capacity a >= 40);
  let last = ids.(39) in
  Alcotest.(check int) "int default" 7 (Arena.Int_col.get ints last);
  Alcotest.(check (float 0.0)) "float default" 1.5 (Arena.Float_col.get floats last);
  Alcotest.(check string) "slot dummy" "" (Arena.Slots.get slots last);
  Arena.Int_col.set ints last 41;
  Arena.Int_col.add ints last 1;
  Alcotest.(check int) "set+add" 42 (Arena.Int_col.get ints last);
  Arena.Slots.set slots last "payload";
  Arena.Slots.clear slots last;
  Alcotest.(check string) "clear restores dummy" "" (Arena.Slots.get slots last)

let arena_checked_bounds () =
  let a = Arena.of_dense ~checked:true ~count:4 () in
  let col = Arena.Int_col.make a ~default:0 in
  Alcotest.(check bool) "dense ids in use" true (Arena.in_use a 3);
  expect_invalid "out-of-range get" (fun () -> Arena.Int_col.get col 100);
  expect_invalid "out-of-range set" (fun () -> Arena.Int_col.set col 100 1);
  expect_invalid "out-of-range free" (fun () -> Arena.free a 100);
  Arena.free a 2;
  expect_invalid "double free" (fun () -> Arena.free a 2);
  let b = Arena.Bitset.create ~len:8 ~default:false () in
  Arena.Bitset.set b 3 true;
  Alcotest.(check int) "popcount" 1 (Arena.Bitset.count b);
  expect_invalid "bitset out of range" (fun () -> Arena.Bitset.get b 8)

let arena_int_buf () =
  let buf = Arena.Int_buf.create ~capacity:2 () in
  for i = 0 to 9 do
    Arena.Int_buf.push buf (i * i)
  done;
  Alcotest.(check int) "length" 10 (Arena.Int_buf.length buf);
  Alcotest.(check int) "get" 81 (Arena.Int_buf.get buf 9);
  Alcotest.(check (list int)) "to_list head" [ 0; 1; 4 ]
    (List.filteri (fun i _ -> i < 3) (Arena.Int_buf.to_list buf));
  expect_invalid "get past length" (fun () -> Arena.Int_buf.get buf 10);
  Arena.Int_buf.clear buf;
  Alcotest.(check int) "cleared" 0 (Arena.Int_buf.length buf)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "stdx:prng",
      [
        Alcotest.test_case "deterministic streams" `Quick prng_deterministic;
        Alcotest.test_case "copy is independent" `Quick prng_copy_independent;
        Alcotest.test_case "split differs" `Quick prng_split_differs;
        Alcotest.test_case "int rejects zero bound" `Quick prng_int_rejects_zero;
        Alcotest.test_case "near-uniform buckets" `Quick prng_uniformity;
        Alcotest.test_case "weighted choice frequencies" `Quick prng_choose_weighted;
        Alcotest.test_case "shuffle permutes" `Quick prng_shuffle_permutes;
        Alcotest.test_case "argument validation" `Quick prng_argument_validation;
      ]
      @ qcheck [ prng_int_bounds; prng_int_in_range; prng_unit_float_range ] );
    ( "stdx:power_law",
      [
        Alcotest.test_case "paper pmf head" `Quick power_law_paper_pmf;
        Alcotest.test_case "validation and bounds" `Quick power_law_validation;
        Alcotest.test_case "pmf sums to one" `Quick power_law_pmf_sums_to_one;
        Alcotest.test_case "sampling matches pmf head" `Quick power_law_sample_skewed;
        Alcotest.test_case "ccdf matches paper formula" `Quick power_law_ccdf_matches_paper;
        Alcotest.test_case "zipf head heavy" `Quick zipf_head_heavier_than_tail;
      ]
      @ qcheck [ power_law_cdf_monotone; power_law_sample_in_support ] );
    ( "stdx:stats",
      [
        Alcotest.test_case "summary mean/variance" `Quick summary_mean_variance;
        Alcotest.test_case "summary empty" `Quick summary_empty;
        Alcotest.test_case "percentiles" `Quick percentile_basics;
        Alcotest.test_case "gini coefficient" `Quick gini_cases;
        Alcotest.test_case "linear fit exact" `Quick linear_fit_exact;
        Alcotest.test_case "linear fit recovers power law" `Quick linear_fit_recovers_power_law;
        Alcotest.test_case "histogram buckets" `Quick histogram_buckets;
      ]
      @ qcheck [ summary_merge_equals_union; gini_bounded ] );
    ( "stdx:tabular",
      [
        Alcotest.test_case "render table" `Quick table_rendering;
        Alcotest.test_case "arity checked" `Quick table_arity_checked;
        Alcotest.test_case "byte units" `Quick fmt_bytes_units;
      ] );
    ( "stdx:arena",
      [
        Alcotest.test_case "LIFO free-list reuse" `Quick arena_lifo_reuse;
        Alcotest.test_case "columns grow in lockstep" `Quick
          arena_columns_grow_in_lockstep;
        Alcotest.test_case "checked bounds and double free" `Quick
          arena_checked_bounds;
        Alcotest.test_case "int buffer" `Quick arena_int_buf;
      ] );
  ]

(* XPath subset tests, built directly on the paper's running example:
   descriptors d1-d3 (Fig. 1), queries q1-q6 (Fig. 2), and the partial
   ordering graph of Fig. 3. *)

module Xml = Xmlkit.Xml

let doc_of_fields ~first ~last ~title ~conf ~year ~size =
  Xml.element "article"
    [
      Xml.element "author" [ Xml.leaf "first" first; Xml.leaf "last" last ];
      Xml.leaf "title" title;
      Xml.leaf "conf" conf;
      Xml.leaf "year" year;
      Xml.leaf "size" size;
    ]

let d1 =
  doc_of_fields ~first:"John" ~last:"Smith" ~title:"TCP" ~conf:"SIGCOMM" ~year:"1989"
    ~size:"315635"

let d2 =
  doc_of_fields ~first:"John" ~last:"Smith" ~title:"IPv6" ~conf:"INFOCOM" ~year:"1996"
    ~size:"312352"

let d3 =
  doc_of_fields ~first:"Alan" ~last:"Doe" ~title:"Wavelets" ~conf:"INFOCOM" ~year:"1996"
    ~size:"259827"

let q s = Xpath.of_string s

let q1 =
  q
    "/article[author[first/John][last/Smith]][title/TCP][conf/SIGCOMM][year/1989][size/315635]"

let q2 = q "/article[author[first/John][last/Smith]][conf/INFOCOM]"
let q3 = q "/article/author[first/John][last/Smith]"
let q4 = q "/article/title/TCP"
let q5 = q "/article/conf/INFOCOM"
let q6 = q "/article/author/last/Smith"

let check_matches name query doc expected =
  Alcotest.(check bool) name expected (Xpath.matches query doc)

let fig2_matching () =
  (* q1 is the most specific query for d1 and matches only d1. *)
  check_matches "q1 matches d1" q1 d1 true;
  check_matches "q1 rejects d2" q1 d2 false;
  check_matches "q1 rejects d3" q1 d3 false;
  (* q2: John Smith at INFOCOM — only d2. *)
  check_matches "q2 matches d2" q2 d2 true;
  check_matches "q2 rejects d1" q2 d1 false;
  check_matches "q2 rejects d3" q2 d3 false;
  (* q3: author John Smith — d1 and d2. *)
  check_matches "q3 matches d1" q3 d1 true;
  check_matches "q3 matches d2" q3 d2 true;
  check_matches "q3 rejects d3" q3 d3 false;
  (* q4: title TCP — only d1. *)
  check_matches "q4 matches d1" q4 d1 true;
  check_matches "q4 rejects d2" q4 d2 false;
  (* q5: conf INFOCOM — d2 and d3. *)
  check_matches "q5 matches d2" q5 d2 true;
  check_matches "q5 matches d3" q5 d3 true;
  check_matches "q5 rejects d1" q5 d1 false;
  (* q6: last name Smith — d1 and d2. *)
  check_matches "q6 matches d1" q6 d1 true;
  check_matches "q6 matches d2" q6 d2 true;
  check_matches "q6 rejects d3" q6 d3 false

let fig3_partial_order () =
  (* Fig. 3: the partial order over Fig. 2's queries.  q2 covers the MSD of
     d2, q4 covers q1 (the MSD of d1), q3 covers both q1 and q2, q5 covers
     q2 and the MSD of d3, and q6 covers q3. *)
  let covers a b = Xpath.covers a b in
  let msd2 = Xpath.of_document d2 in
  let msd3 = Xpath.of_document d3 in
  Alcotest.(check bool) "q2 covers msd(d2)" true (covers q2 msd2);
  Alcotest.(check bool) "q4 covers q1" true (covers q4 q1);
  Alcotest.(check bool) "q3 covers q2" true (covers q3 q2);
  Alcotest.(check bool) "q5 covers q2" true (covers q5 q2);
  Alcotest.(check bool) "q5 covers msd(d3)" true (covers q5 msd3);
  Alcotest.(check bool) "q6 covers q3" true (covers q6 q3);
  (* Transitivity through the graph. *)
  Alcotest.(check bool) "q6 covers q1" true (covers q6 q1);
  Alcotest.(check bool) "q3 covers q1" true (covers q3 q1);
  Alcotest.(check bool) "q6 covers msd(d2)" true (covers q6 msd2);
  (* Non-edges. *)
  Alcotest.(check bool) "q2 does not cover q1 (conference differs)" false (covers q2 q1);
  Alcotest.(check bool) "q4 does not cover q2" false (covers q4 q2);
  Alcotest.(check bool) "q5 does not cover q1" false (covers q5 q1);
  Alcotest.(check bool) "q1 does not cover q2" false (covers q1 q2);
  Alcotest.(check bool) "q3 does not cover q6" false (covers q3 q6)

let msd_of_document () =
  let msd = Xpath.of_document d1 in
  Alcotest.(check bool) "MSD matches its document" true (Xpath.matches msd d1);
  Alcotest.(check bool) "MSD rejects others" false (Xpath.matches msd d2);
  Alcotest.(check bool) "MSD equals q1" true (Xpath.equal msd q1);
  Alcotest.(check bool) "q2 covers MSD of d2" true (Xpath.covers q2 (Xpath.of_document d2))

let normalization_canonical () =
  (* Predicate order is irrelevant after normalization. *)
  let a = q "/article[conf/SIGCOMM][title/TCP]" in
  let b = q "/article[title/TCP][conf/SIGCOMM]" in
  Alcotest.(check bool) "predicate order normalized" true (Xpath.equal a b);
  Alcotest.(check string) "identical canonical strings" (Xpath.to_string a)
    (Xpath.to_string b)

let parse_print_roundtrip () =
  List.iter
    (fun query ->
      let s = Xpath.to_string query in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" s)
        true
        (Xpath.equal query (Xpath.of_string s)))
    [ q1; q2; q3; q4; q5; q6 ]

let paper_syntax_printing () =
  (* Single-child chains print inline, as the paper writes them. *)
  Alcotest.(check string) "q4 prints as a chain" "/article/title/TCP" (Xpath.to_string q4);
  Alcotest.(check string) "q6 prints as a chain" "/article/author/last/Smith"
    (Xpath.to_string q6)

let wildcard_and_descendant () =
  let anywhere_smith = q "//last/Smith" in
  check_matches "//last/Smith matches d1" anywhere_smith d1 true;
  check_matches "//last/Smith rejects d3" anywhere_smith d3 false;
  let star = q "/article/*/last/Smith" in
  check_matches "wildcard step matches" star d1 true;
  check_matches "wildcard step still filters" (q "/article/*/last/Doe") d1 false;
  let deep_star = q "/*[title/TCP]" in
  check_matches "root wildcard" deep_star d1 true;
  Alcotest.(check bool) "//last/Smith covers q6" true (Xpath.covers anywhere_smith q6);
  Alcotest.(check bool) "q6 does not cover //last/Smith" false
    (Xpath.covers q6 anywhere_smith)

let descendant_depth () =
  let doc = Xml.of_string "<a><b><c><d>v</d></c></b></a>" in
  check_matches "//d/v deep" (q "//d/v") doc true;
  check_matches "/a//d" (q "/a//d") doc true;
  check_matches "/a/d is not deep" (q "/a/d") doc false

let prefix_tests () =
  (* Section IV-C's substring generalization: Smi* matches values starting
     with "Smi" and covers the exact queries it generalizes. *)
  let smith_prefix = q "/article/author/last/Smi*" in
  check_matches "Smi* matches Smith" smith_prefix d1 true;
  check_matches "Smi* rejects Doe" smith_prefix d3 false;
  Alcotest.(check bool) "Smi* covers q6" true (Xpath.covers smith_prefix q6);
  Alcotest.(check bool) "q6 does not cover Smi*" false (Xpath.covers q6 smith_prefix);
  Alcotest.(check bool) "S* covers Smi*" true
    (Xpath.covers (q "/article/author/last/S*") smith_prefix);
  Alcotest.(check bool) "Smi* does not cover S*" false
    (Xpath.covers smith_prefix (q "/article/author/last/S*"));
  Alcotest.(check bool) "wildcard covers prefix" true
    (Xpath.covers (q "/article/author/last/*") smith_prefix);
  (* The prefix-vs-prefix arm of [covers] is [is_prefix p p']: the shorter
     pattern is the more general one, and equal patterns cover each other.
     Pinned here because the routed prefix index relies on this
     asymmetry. *)
  Alcotest.(check bool) "equal prefixes cover each other" true
    (Xpath.covers smith_prefix (q "/article/author/last/Smi*"));
  Alcotest.(check bool) "prefix does not cover its extension's exact form" false
    (Xpath.covers (q "/article/author/last/Smith*") smith_prefix);
  Alcotest.(check string) "prefix prints with star" "/article/author/last/Smi*"
    (Xpath.to_string smith_prefix);
  Alcotest.(check bool) "prefix roundtrips" true
    (Xpath.equal smith_prefix (Xpath.of_string (Xpath.to_string smith_prefix)));
  Alcotest.(check (list string)) "prefix_terms collects the Prefix tests"
    [ "Smi" ]
    (Xpath.prefix_terms smith_prefix);
  Alcotest.(check (list string)) "prefix_terms of an exact query is empty" []
    (Xpath.prefix_terms q6)

let parse_errors () =
  List.iter
    (fun input ->
      match Xpath.of_string input with
      | exception Xpath.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed query %S" input)
    [ ""; "article"; "/article["; "/article[]"; "/article]"; "/" ]

let generalizations_cover () =
  let gens = Xpath.generalizations q2 in
  Alcotest.(check bool) "q2 has generalizations" true (List.length gens > 0);
  List.iter
    (fun gen ->
      Alcotest.(check bool)
        (Printf.sprintf "%s covers q2" (Xpath.to_string gen))
        true (Xpath.covers gen q2))
    gens

let generalizations_strictly_smaller () =
  List.iter
    (fun query ->
      List.iter
        (fun gen ->
          Alcotest.(check bool) "one node fewer" true
            (Xpath.node_count gen = Xpath.node_count query - 1))
        (Xpath.generalizations query))
    [ q1; q2; q3 ]

let generalization_of_leaf_is_empty () =
  Alcotest.(check int) "single-node query has no generalization" 0
    (List.length (Xpath.generalizations (q "/article")))

let minimization_cases () =
  (* A predicate subsumed by a sibling is redundant and normalizes away:
     equivalent expressions share one canonical form (Section III-B's
     "unique normalized format"). *)
  let redundant = q "/article[author/last/Smith][author[first/John][last/Smith]]" in
  Alcotest.(check bool) "redundant author predicate dropped" true
    (Xpath.equal redundant q3);
  Alcotest.(check string) "canonical string identical" (Xpath.to_string q3)
    (Xpath.to_string redundant);
  (* Mutually-subsuming duplicates leave one survivor. *)
  let duplicated = q "/article[title/TCP][title/TCP]" in
  Alcotest.(check bool) "duplicates collapse" true (Xpath.equal duplicated q4);
  (* Descendant subsumed by a child chain to the same shape. *)
  let deep = q "/article[//last/Smith][author/last/Smith]" in
  Alcotest.(check bool) "descendant subsumed by child path" true
    (Xpath.equal deep (q "/article/author/last/Smith"));
  (* Non-redundant predicates survive: article + two author/last/<name>
     chains of three nodes each. *)
  let both = q "/article[author/last/Smith][author/last/Doe]" in
  Alcotest.(check int) "distinct constraints kept" 7 (Xpath.node_count both)

let covers_vs_matching_on_multiauthor () =
  (* A two-author document matches both authors' queries; covering between
     the queries still fails. *)
  let doc =
    Xml.element "article"
      [
        Xml.element "author" [ Xml.leaf "first" "John"; Xml.leaf "last" "Smith" ];
        Xml.element "author" [ Xml.leaf "first" "Alan"; Xml.leaf "last" "Doe" ];
        Xml.leaf "title" "Joint";
      ]
  in
  check_matches "first author matches" q3 doc true;
  check_matches "second author matches" (q "/article/author[first/Alan][last/Doe]") doc true;
  Alcotest.(check bool) "queries do not cover each other" false
    (Xpath.covers q3 (q "/article/author[first/Alan][last/Doe]"));
  (* The MSD of the multi-author doc is covered by both. *)
  let msd = Xpath.of_document doc in
  Alcotest.(check bool) "both cover the msd" true
    (Xpath.covers q3 msd && Xpath.covers (q "/article/author[first/Alan][last/Doe]") msd)

let depth_and_count () =
  Alcotest.(check int) "q4 depth" 3 (Xpath.depth q4);
  Alcotest.(check int) "q4 nodes" 3 (Xpath.node_count q4);
  (* q1 mirrors d1: article + author/first/John/last/Smith + the four
     leaf fields with their values = 14 pattern nodes. *)
  Alcotest.(check int) "q1 nodes" 14 (Xpath.node_count q1)

(* Property: covering is sound w.r.t. matching on the Fig. 1 corpus — if
   q' covers q and a document matches q, it must match q'. *)

let arbitrary_query =
  let open QCheck.Gen in
  let field =
    oneofl
      [
        "[author[first/John][last/Smith]]";
        "[author[first/Alan][last/Doe]]";
        "[author/last/Smith]";
        "[title/TCP]";
        "[title/IPv6]";
        "[title/Wavelets]";
        "[conf/SIGCOMM]";
        "[conf/INFOCOM]";
        "[year/1989]";
        "[year/1996]";
      ]
  in
  let gen =
    map
      (fun fields ->
        let fields = List.sort_uniq String.compare fields in
        Xpath.of_string ("/article" ^ String.concat "" fields))
      (list_size (int_range 0 4) field)
  in
  QCheck.make ~print:Xpath.to_string gen

let minimization_preserves_semantics =
  QCheck.Test.make ~name:"normalization preserves matching" ~count:500
    arbitrary_query (fun query ->
      (* arbitrary_query is already normalized; re-render and re-parse, then
         compare matching behaviour on the corpus. *)
      let reparsed = Xpath.of_string (Xpath.to_string query) in
      List.for_all
        (fun doc -> Xpath.matches query doc = Xpath.matches reparsed doc)
        [ d1; d2; d3 ])

let covers_consistent_with_matching =
  QCheck.Test.make ~name:"covers consistent with matching" ~count:1000
    (QCheck.pair arbitrary_query arbitrary_query)
    (fun (qa, qb) ->
      if Xpath.covers qa qb then
        List.for_all (fun doc -> (not (Xpath.matches qb doc)) || Xpath.matches qa doc)
          [ d1; d2; d3 ]
      else true)

let covers_reflexive =
  QCheck.Test.make ~name:"covers reflexive" ~count:300 arbitrary_query (fun query ->
      Xpath.covers query query)

let covers_transitive =
  QCheck.Test.make ~name:"covers transitive" ~count:1000
    (QCheck.triple arbitrary_query arbitrary_query arbitrary_query)
    (fun (a, b, c) ->
      if Xpath.covers a b && Xpath.covers b c then Xpath.covers a c else true)

let covers_antisymmetric_on_normal_forms =
  QCheck.Test.make ~name:"covers antisymmetric" ~count:1000
    (QCheck.pair arbitrary_query arbitrary_query)
    (fun (a, b) ->
      if Xpath.covers a b && Xpath.covers b a then Xpath.equal a b else true)

let generalizations_always_cover =
  QCheck.Test.make ~name:"generalizations cover the original" ~count:300 arbitrary_query
    (fun query ->
      List.for_all (fun gen -> Xpath.covers gen query) (Xpath.generalizations query))

let roundtrip_property =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:300 arbitrary_query
    (fun query -> Xpath.equal query (Xpath.of_string (Xpath.to_string query)))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "xpath:paper-example",
      [
        Alcotest.test_case "Fig. 2 query matching" `Quick fig2_matching;
        Alcotest.test_case "Fig. 3 partial order" `Quick fig3_partial_order;
        Alcotest.test_case "most specific query" `Quick msd_of_document;
        Alcotest.test_case "paper-style printing" `Quick paper_syntax_printing;
      ] );
    ( "xpath:engine",
      [
        Alcotest.test_case "normalization" `Quick normalization_canonical;
        Alcotest.test_case "parse/print roundtrip" `Quick parse_print_roundtrip;
        Alcotest.test_case "wildcard and descendant" `Quick wildcard_and_descendant;
        Alcotest.test_case "descendant depth" `Quick descendant_depth;
        Alcotest.test_case "prefix tests" `Quick prefix_tests;
        Alcotest.test_case "minimization" `Quick minimization_cases;
        Alcotest.test_case "multi-author covering" `Quick covers_vs_matching_on_multiauthor;
        Alcotest.test_case "parse errors" `Quick parse_errors;
        Alcotest.test_case "generalizations cover" `Quick generalizations_cover;
        Alcotest.test_case "generalizations shrink by one" `Quick
          generalizations_strictly_smaller;
        Alcotest.test_case "leaf has no generalization" `Quick
          generalization_of_leaf_is_empty;
        Alcotest.test_case "depth and node count" `Quick depth_and_count;
      ]
      @ qcheck
          [
            covers_consistent_with_matching;
            covers_reflexive;
            covers_transitive;
            covers_antisymmetric_on_normal_forms;
            generalizations_always_cover;
            roundtrip_property;
            minimization_preserves_semantics;
          ] );
  ]

(* The resumable lookup machine (Section IV's search, defunctionalized):
   scripted oracles prove the machine is a value that can be suspended,
   duplicated and resumed; the index drivers are checked against a manual
   drive; and the machine's wire bill is checked against the bytes the
   real network layer charges for the same walk. *)

module Xml = Xmlkit.Xml
module Index = P2pindex.Xpath_index
module Wire = P2pindex.Wire
module L = P2pindex.Lookup.Make (P2pindex.Xpath_query)

let q s = Xpath.of_string s

(* ------------------------------------------------------------------ *)
(* A scripted step oracle: a pure answer table, no index behind it. *)

let q_root = q "/article/author/last/Smith"
let q_author = q "/article/author[first/John][last/Smith]"
let msd1 = q "/article[author[first/John][last/Smith]][title/TCP]"
let msd2 = q "/article[author[first/John][last/Smith]][title/IPv6]"
let f1 = { Storage.Block_store.name = "x.pdf"; size_bytes = 10 }
let f2 = { Storage.Block_store.name = "y.pdf"; size_bytes = 20 }

let scripted ~generalization:_ query =
  let qs = Xpath.to_string query in
  if String.equal qs (Xpath.to_string q_root) then L.Children [ q_author ]
  else if String.equal qs (Xpath.to_string q_author) then L.Children [ msd1; msd2 ]
  else if String.equal qs (Xpath.to_string msd1) then L.File f1
  else if String.equal qs (Xpath.to_string msd2) then L.File f2
  else L.Not_indexed

let names files = List.sort compare (List.map (fun (_q, f) -> f.Storage.Block_store.name) files)

let scripted_search_walks_the_script () =
  let r = L.drive ~step:scripted (L.search q_root) in
  Alcotest.(check (list string)) "both files found" [ "x.pdf"; "y.pdf" ] (names r.L.files);
  Alcotest.(check int) "one interaction per probe" 4 r.L.interactions;
  (* The bill is reproducible from the wire model alone: a request per
     probe plus the estimated response for each scripted answer. *)
  let request query = Wire.request_bytes (Xpath.to_string query) in
  let expected =
    request q_root
    + L.response_estimate (L.Children [ q_author ])
    + request q_author
    + L.response_estimate (L.Children [ msd1; msd2 ])
    + request msd1
    + L.response_estimate (L.File f1)
    + request msd2
    + L.response_estimate (L.File f2)
  in
  Alcotest.(check int) "wire bill from the model" expected r.L.wire_bill

(* A suspended machine is a value: feeding the same [Need_step] two
   different answers explores two futures from one suspension point. *)
let machine_suspends_and_forks () =
  let rec to_need_step m =
    match m with
    | L.Pending r -> to_need_step (r.L.run ())
    | L.Need_step _ -> m
    | L.Done _ -> Alcotest.fail "machine finished before its first probe"
  in
  match to_need_step (L.search q_author) with
  | L.Need_step (query, k) ->
      Alcotest.(check string) "suspended on the root probe"
        (Xpath.to_string q_author) (Xpath.to_string query);
      let fed answer = L.drive ~step:scripted (k.L.feed answer) in
      let both = fed (L.Children [ msd1; msd2 ]) in
      let one = fed (L.Children [ msd1 ]) in
      Alcotest.(check (list string)) "first future sees both"
        [ "x.pdf"; "y.pdf" ] (names both.L.files);
      Alcotest.(check (list string)) "second future sees one"
        [ "x.pdf" ] (names one.L.files);
      Alcotest.(check int) "futures bill independently" 3 both.L.interactions;
      Alcotest.(check int) "shorter future bills less" 2 one.L.interactions
  | L.Pending _ | L.Done _ -> Alcotest.fail "expected a suspension"

(* ------------------------------------------------------------------ *)
(* Against the real index: the Fig. 1/4 running example. *)

let doc_of_fields ~first ~last ~title ~conf ~year ~size =
  Xml.element "article"
    [
      Xml.element "author" [ Xml.leaf "first" first; Xml.leaf "last" last ];
      Xml.leaf "title" title;
      Xml.leaf "conf" conf;
      Xml.leaf "year" year;
      Xml.leaf "size" size;
    ]

let d1 =
  doc_of_fields ~first:"John" ~last:"Smith" ~title:"TCP" ~conf:"SIGCOMM" ~year:"1989"
    ~size:"315635"

let d2 =
  doc_of_fields ~first:"John" ~last:"Smith" ~title:"IPv6" ~conf:"INFOCOM" ~year:"1996"
    ~size:"312352"

let fig4_edges doc =
  let field name = Xml.text_content (Option.get (Xml.find_child doc name)) in
  let author = Option.get (Xml.find_child doc "author") in
  let first = Xml.text_content (Option.get (Xml.find_child author "first")) in
  let last = Xml.text_content (Option.get (Xml.find_child author "last")) in
  let msd = Xpath.of_document doc in
  let q_last = q (Printf.sprintf "/article/author/last/%s" last) in
  let q_author = q (Printf.sprintf "/article/author[first/%s][last/%s]" first last) in
  let q_at =
    q
      (Printf.sprintf "/article[author[first/%s][last/%s]][title/%s]" first last
         (field "title"))
  in
  [
    { P2pindex.Scheme.parent = q_last; child = q_author };
    { P2pindex.Scheme.parent = q_author; child = q_at };
    { P2pindex.Scheme.parent = q_at; child = msd };
  ]

let fig4_scheme =
  P2pindex.Scheme.make ~name:"fig4" ~edges:(fun msd ->
      let doc =
        List.find (fun doc -> Xpath.equal (Xpath.of_document doc) msd) [ d1; d2 ]
      in
      fig4_edges doc)

let make_index ?network () =
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:77L ~node_count:20 ()) in
  let index = Index.create ?network ~resolver () in
  let file doc name = { Storage.Block_store.name; size_bytes = Xml.size_bytes doc } in
  Index.publish index ~scheme:fig4_scheme ~msd:(Xpath.of_document d1) (file d1 "x.pdf");
  Index.publish index ~scheme:fig4_scheme ~msd:(Xpath.of_document d2) (file d2 "y.pdf");
  index

let index_step index ~generalization:_ query : L.answer =
  match Index.lookup_step index query with
  | Index.File file -> L.File file
  | Index.Children children -> L.Children children
  | Index.Not_indexed -> L.Not_indexed

(* The public driver and a manual drive of the machine must agree — the
   driver is nothing but [drive] plus instrumentation. *)
let manual_drive_equals_search () =
  let index = make_index () in
  let interactions = ref 0 in
  let driver = Index.search ~interactions index q_root in
  let manual = L.drive ~step:(index_step index) (L.search q_root) in
  Alcotest.(check (list string)) "same files" (names driver) (names manual.L.files);
  Alcotest.(check int) "same interaction count" !interactions manual.L.interactions

let manual_drive_equals_generalization () =
  let index = make_index () in
  (* Not indexed: one specialization step above the indexed author key. *)
  let q2 = q "/article[author[first/John][last/Smith]][conf/INFOCOM]" in
  let interactions = ref 0 in
  let driver = Index.search_with_generalization ~interactions index q2 in
  let manual =
    L.drive ~step:(index_step index) (L.search_with_generalization q2)
  in
  Alcotest.(check (list string)) "generalization recovers the same files"
    (names driver) (names manual.L.files);
  Alcotest.(check bool) "something was found" true (manual.L.files <> []);
  Alcotest.(check int) "same interaction count" !interactions manual.L.interactions

(* The machine's wire bill is an a-priori estimate; on a fault-free
   network it must equal the bytes the network layer actually charges. *)
let wire_bill_matches_network_billing () =
  let network = Dht.Network.create ~node_count:20 () in
  let index = make_index ~network () in
  Dht.Network.reset network;
  let r = L.drive ~step:(index_step index) (L.search q_root) in
  let billed =
    Dht.Network.bytes network Dht.Network.Request
    + Dht.Network.bytes network Dht.Network.Response
  in
  Alcotest.(check int) "estimate = actual bytes" billed r.L.wire_bill;
  Alcotest.(check bool) "the walk cost something" true (r.L.wire_bill > 0)

(* ------------------------------------------------------------------ *)
(* Wire model: one pinned constant per message kind, so a drive-by edit
   to the byte model cannot slip through as a silent traffic shift. *)

let wire_bytes_pinned () =
  Alcotest.(check int) "header" 48 Wire.header_bytes;
  Alcotest.(check int) "entry overhead" 4 Wire.entry_overhead_bytes;
  Alcotest.(check int) "request = header + query" 51 (Wire.request_bytes "abc");
  Alcotest.(check int) "empty response = bare header" 48 (Wire.response_bytes []);
  Alcotest.(check int) "response = header + per-entry overhead + strings" 61
    (Wire.response_bytes [ "ab"; "cde" ]);
  Alcotest.(check int) "file response = header + overhead + name + size field" 65
    (Wire.file_response_bytes { Storage.Block_store.name = "x.pdf"; size_bytes = 1 });
  Alcotest.(check int) "cache install = header + 2 overheads + both keys" 59
    (Wire.cache_install_bytes "ab" "c");
  Alcotest.(check int) "stored entry = fixed cost + key" 24
    (Wire.stored_entry_bytes "abcd");
  Alcotest.(check int) "consult ticket = header + query" 50 (Wire.consult_bytes "ab")

let suite =
  [
    ( "lookup:machine",
      [
        Alcotest.test_case "scripted search" `Quick scripted_search_walks_the_script;
        Alcotest.test_case "suspend and fork" `Quick machine_suspends_and_forks;
        Alcotest.test_case "manual drive = Index.search" `Quick manual_drive_equals_search;
        Alcotest.test_case "manual drive = generalization" `Quick
          manual_drive_equals_generalization;
        Alcotest.test_case "wire bill = network bytes" `Quick
          wire_bill_matches_network_billing;
        Alcotest.test_case "wire bytes pinned" `Quick wire_bytes_pinned;
      ] );
  ]

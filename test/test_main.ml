(* Aggregates every library's suites into one alcotest binary. *)

let () =
  Alcotest.run "p2pindex"
    (Test_stdx.suite @ Test_hashing.suite @ Test_xml.suite @ Test_xpath.suite @ Test_fuzzy.suite
   @ Test_dht.suite @ Test_storage.suite @ Test_p2pindex.suite @ Test_prefix.suite
   @ Test_lookup.suite
   @ Test_cache.suite @ Test_bib.suite @ Test_workload.suite @ Test_sim.suite
   @ Test_engine.suite @ Test_obs.suite @ Test_bench_report.suite @ Test_churn.suite
   @ Test_faults.suite @ Test_quorum.suite
   @ Test_lint.suite)

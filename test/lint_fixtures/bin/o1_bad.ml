(* Fixture: metric names off the p2pindex_<subsystem>_<name> convention. *)
let lookups registry = Obs.Metrics.counter registry "lookup_count"

let queue_depth registry = Obs.Metrics.gauge registry "p2pindex_queue_depth_seconds"

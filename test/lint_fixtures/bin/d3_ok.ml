(* Fixture: structural equality, plus one justified identity check. *)
let same a b = a = b

(* lint: allow phys-equal — fixture exercising the comment suppression form *)
let identical a b = a == b

(* Fixture: handlers name the exception they expect. *)
let parse s = try Some (int_of_string s) with Failure message -> ignore message; None

let find tbl k = try Some (Hashtbl.find tbl k) with Not_found -> None

(* Fixture: physical equality and Obj tricks. *)
let same a b = a == b

let cast x = Obj.magic x

(* Fixture: randomness flows through the seeded project PRNG. *)
let roll prng = Stdx.Prng.int prng 6

let now clock = clock ()

(* Fixture: convention-abiding metric names. *)
let lookups registry = Obs.Metrics.counter registry "p2pindex_fixture_lookups_total"

let queue_depth registry = Obs.Metrics.gauge registry "p2pindex_fixture_queue_depth"

let latency registry = Obs.Metrics.histogram registry "p2pindex_fixture_latency_seconds"

(* Fixture: ambient nondeterminism — the global Random state. *)
let roll () = Random.int 6

let now () = Unix.gettimeofday ()

let seed () = Random.self_init ()

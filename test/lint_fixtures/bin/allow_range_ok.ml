(* The [@lint.allow] attribute covers the annotated node's whole line
   span: the physical equality below sits two lines after the node's
   first line and is still suppressed. *)
let any_phys_equal witness xs =
  (List.exists
     (fun x ->
       x == witness)
     xs
  [@lint.allow
    "phys-equal — identity scan over interned witnesses; the attribute \
     covers this whole multi-line node"])

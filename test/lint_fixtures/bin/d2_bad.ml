(* Fixture: bucket-order-dependent fold building a list. *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl

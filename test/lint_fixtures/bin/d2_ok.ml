(* Fixture: commutative reductions are order-free, sorted iteration is not
   order-dependent at all. *)
let size tbl = Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0

let total tbl = Hashtbl.fold (fun _ n acc -> acc + n) tbl 0

let keys tbl = Stdx.Det_tbl.sorted_keys ~compare:String.compare tbl

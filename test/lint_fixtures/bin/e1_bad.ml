(* Fixture: catch-all handlers swallowing unknown failures. *)
let parse s = try int_of_string s with _ -> 0

let head l = try List.hd l with Failure _ -> invalid_arg "empty"

(* Fixture: a suppression without a justification is itself a violation. *)
(* lint: allow phys-equal *)
let identical a b = a == b

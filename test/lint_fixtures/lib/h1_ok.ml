(* Fixture: the interface lives next door in h1_ok.mli. *)
let answer = 42

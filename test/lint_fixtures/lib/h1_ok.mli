(* Fixture interface: its presence is what the H1 check looks for. *)
val answer : int

(* P2 positives: runtime polymorphic comparison on non-immediate
   types in hot code. *)

type pair = { first : int; second : int }

let[@hot] structural_equal (a : pair) (b : pair) = a = b

let[@hot] polymorphic_hash (p : pair) = Hashtbl.hash p

let[@hot] list_member (p : pair) ps = List.mem p ps

(* P4 positives: stdlib List functions that build a fresh list on every
   call of a hot function. *)

let[@hot] mapped xs = List.map succ xs

let[@hot] filtered xs = List.filter (fun x -> x > 0) xs

(* P1 negatives: non-capturing closures are statically allocated, and
   cold code may close over or partially apply anything. *)

let add3 a b c = a + b + c

let[@hot] static_closure xs = List.fold_left (fun acc x -> acc + x) 0 xs

let cold_partial x = add3 x 1

let cold_closure base xs = List.fold_left (fun acc x -> acc + x + base) 0 xs

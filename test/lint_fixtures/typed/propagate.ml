(* Propagation fixture: [@hot] on [drive] reaches every helper it
   calls, through nested modules and functor bodies; a [let[@hot]]
   inside a cold owner stands alone as "owner.name". *)

module Make (X : sig
  val unit_cost : int
end) =
struct
  module Stack = struct
    type t = { mutable items : int list }

    let push s x = s.items <- x :: s.items
    let total s = List.fold_left ( + ) 0 s.items
  end

  let cost x = x * X.unit_cost

  let[@hot] drive s x =
    Stack.push s (cost x);
    Stack.total s
end

let cold_owner () =
  let[@hot] inner x = x + 1 in
  inner 1

(* P1 positives: closures and partial applications that allocate on
   every call of a hot function. *)

let add3 a b c = a + b + c

let[@hot] capturing_closure base xs =
  List.fold_left (fun acc x -> acc + x + base) 0 xs

let[@hot] partial_application x = add3 x 1

(* Suppression forms recognized by the typed pass: the comment form
   covers the next line; the attribute form covers the node's whole
   line span, including lines after the attribute's own line. *)

type mixed = { tag : int; weight : float }

let[@hot] comment_suppressed a b =
  (* lint: allow P3 — fixture: the comment form covers the next line *)
  (a, b)

let[@hot] attribute_suppressed base xs =
  (List.fold_left
     (fun acc x ->
       acc + x + base)
     0
     xs
  [@lint.allow
    "P1 — fixture: the attribute covers every line of this multi-line node"])

let[@hot] poly_suppressed (m : mixed) (n : mixed) =
  (* lint: allow P2 — fixture: justified polymorphic comparison *)
  compare m n

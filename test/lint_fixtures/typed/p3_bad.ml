(* P3 positives: tuples, float-boxing constructors and mixed records
   allocated on every call. *)

type mixed = { tag : int; weight : float }

let[@hot] tuple_result a b = (a, b)

let[@hot] boxed_float_option (x : float) = Some (x +. 1.0)

let[@hot] mixed_record tag weight = { tag; weight }

(* P4 negatives: list functions that do not return a list, and cold
   code building lists. *)

let[@hot] counted xs = List.length xs

let cold_mapped xs = List.map succ xs

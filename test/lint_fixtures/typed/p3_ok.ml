(* P3 negatives: all-float records are flat storage, and allocation at
   definition time (depth 0) is static. *)

type flat = { x : float; y : float }

let[@hot] flat_record x y = { x; y }

let[@hot] static_pair = (1, 2)

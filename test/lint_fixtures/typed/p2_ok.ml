(* P2 negatives: comparisons the runtime specializes. *)

let[@hot] int_equal (a : int) (b : int) = a = b

let[@hot] float_less (a : float) (b : float) = a < b

let[@hot] string_compare (a : string) (b : string) = compare a b

(* The fault layer's contract: verdicts are a pure function of the plan
   seed (bit-reproducible runs), the zero plan degenerates the RPC stack
   to the exact historical billing, duplicates are idempotent at the
   index, and retries/hedging buy back success under loss. *)

module Plan = Faults.Plan
module Outbox = Faults.Outbox
module Rpc = Dht.Rpc
module Network = Dht.Network

(* ------------------------------------------------------------------ *)
(* Plan: determinism, rates, resolution, validation. *)

let verdict_stream ~seed ~spec n =
  let plan = Plan.create ~seed spec in
  List.init n (fun i ->
      let src = (i mod 7) - 1 and dst = i mod 5 in
      Plan.message plan ~src ~dst)

let plan_seed_determinism () =
  let spec =
    Plan.spec ~loss_rate:0.3 ~duplicate_rate:0.2
      ~latency:(Plan.Exponential { mean = 0.05 })
      ()
  in
  let a = verdict_stream ~seed:11L ~spec 500 in
  let b = verdict_stream ~seed:11L ~spec 500 in
  let c = verdict_stream ~seed:12L ~spec 500 in
  List.iter2
    (fun (x : Plan.verdict) (y : Plan.verdict) ->
      Alcotest.(check bool) "same lost" x.lost y.lost;
      Alcotest.(check bool) "same duplicated" x.duplicated y.duplicated;
      Alcotest.(check (float 0.0)) "same latency" x.latency y.latency)
    a b;
  Alcotest.(check bool) "different seed, different stream" true
    (List.exists2
       (fun (x : Plan.verdict) (y : Plan.verdict) ->
         x.lost <> y.lost || x.duplicated <> y.duplicated
         || x.latency <> y.latency)
       a c)

let plan_rates_respected () =
  let n = 2_000 in
  let count spec pick =
    let vs = verdict_stream ~seed:5L ~spec n in
    List.length (List.filter pick vs)
  in
  Alcotest.(check int) "loss 0 never drops"
    0
    (count (Plan.spec ()) (fun (v : Plan.verdict) -> v.lost));
  Alcotest.(check int) "loss 1 always drops" n
    (count (Plan.spec ~loss_rate:1.0 ()) (fun (v : Plan.verdict) -> v.lost));
  let lost =
    count (Plan.spec ~loss_rate:0.3 ()) (fun (v : Plan.verdict) -> v.lost)
  in
  let rate = float_of_int lost /. float_of_int n in
  if rate < 0.25 || rate > 0.35 then
    Alcotest.failf "empirical loss rate %.3f far from 0.3" rate

let plan_latency_distributions () =
  let stream latency =
    verdict_stream ~seed:3L ~spec:(Plan.spec ~latency ()) 500
  in
  List.iter
    (fun (v : Plan.verdict) ->
      Alcotest.(check (float 0.0)) "constant latency" 0.125 v.latency)
    (stream (Plan.Constant 0.125));
  List.iter
    (fun (v : Plan.verdict) ->
      if v.latency < 0.01 || v.latency >= 0.02 then
        Alcotest.failf "uniform latency %g outside [0.01, 0.02)" v.latency)
    (stream (Plan.Uniform { lo = 0.01; hi = 0.02 }));
  let exp_stream = stream (Plan.Exponential { mean = 0.05 }) in
  List.iter
    (fun (v : Plan.verdict) ->
      if v.latency < 0.0 then Alcotest.failf "negative latency %g" v.latency)
    exp_stream;
  let mean =
    List.fold_left (fun acc (v : Plan.verdict) -> acc +. v.latency) 0.0 exp_stream
    /. 500.0
  in
  if mean < 0.03 || mean > 0.07 then
    Alcotest.failf "exponential mean %.4f far from 0.05" mean

let plan_override_resolution () =
  (* Link beats node; destination node beats source node; others get the
     base spec. *)
  let plan =
    Plan.create ~seed:1L
      ~node_overrides:
        [ (3, Plan.spec ~loss_rate:1.0 ()); (4, Plan.spec ()) ]
      ~link_overrides:[ ((4, 3), Plan.spec ()) ]
      (Plan.spec ())
  in
  Alcotest.(check bool) "base spec clean" false
    (Plan.message plan ~src:0 ~dst:1).lost;
  Alcotest.(check bool) "dst override drops" true
    (Plan.message plan ~src:0 ~dst:3).lost;
  Alcotest.(check bool) "src override drops" true
    (Plan.message plan ~src:3 ~dst:1).lost;
  Alcotest.(check bool) "dst beats src" false
    (Plan.message plan ~src:3 ~dst:4).lost;
  Alcotest.(check bool) "link beats node" false
    (Plan.message plan ~src:4 ~dst:3).lost

let plan_zero_and_validation () =
  Alcotest.(check bool) "zero plan is zero" true (Plan.is_zero Plan.zero);
  Alcotest.(check bool) "zero-valued spec is zero" true
    (Plan.is_zero (Plan.create (Plan.spec ~latency:(Plan.Constant 0.0) ())));
  Alcotest.(check bool) "lossy plan is not zero" false
    (Plan.is_zero (Plan.create (Plan.spec ~loss_rate:0.1 ())));
  let v = Plan.message Plan.zero ~src:(-1) ~dst:0 in
  Alcotest.(check bool) "zero verdict clean" true
    ((not v.lost) && (not v.duplicated) && v.latency = 0.0);
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "loss rate > 1 rejected" true
    (rejects (fun () -> Plan.spec ~loss_rate:1.5 ()));
  Alcotest.(check bool) "negative duplicate rate rejected" true
    (rejects (fun () -> Plan.spec ~duplicate_rate:(-0.1) ()));
  Alcotest.(check bool) "empty uniform interval rejected" true
    (rejects (fun () -> Plan.spec ~latency:(Plan.Uniform { lo = 0.2; hi = 0.1 }) ()))

(* ------------------------------------------------------------------ *)
(* Outbox: time order, FIFO ties, flush. *)

let outbox_orders_deliveries () =
  let box = Outbox.create () in
  let log = ref [] in
  let post time tag = Outbox.post box ~time (fun () -> log := tag :: !log) in
  post 3.0 "c";
  post 1.0 "a";
  post 2.0 "b1";
  post 2.0 "b2";
  post 9.0 "z";
  Alcotest.(check int) "pending" 5 (Outbox.pending box);
  Alcotest.(check int) "due by 2.5" 3 (Outbox.deliver_until box ~now:2.5);
  Alcotest.(check (list string)) "time order, FIFO ties"
    [ "a"; "b1"; "b2" ] (List.rev !log);
  Alcotest.(check int) "flush delivers the rest" 2 (Outbox.flush box);
  Alcotest.(check (list string)) "flush order" [ "a"; "b1"; "b2"; "c"; "z" ]
    (List.rev !log);
  Alcotest.(check bool) "NaN time rejected" true
    (try Outbox.post box ~time:Float.nan (fun () -> ()); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* RPC: zero-fault byte identity, retries, hedging, one-ways. *)

let exchange ~net ~rpc ~dst ~request_bytes ~response_bytes =
  (* The reference accounting the pre-RPC code performed for one
     successful exchange, and the RPC-layer equivalent. *)
  ignore net;
  Rpc.call rpc ~dst ~request_bytes
    ~handler:(fun ~node:_ -> Rpc.Reply { bytes = response_bytes; value = () })
    ()

let rpc_zero_fault_byte_identity () =
  let direct = Network.create ~node_count:8 () in
  let routed = Network.create ~node_count:8 () in
  let rpc = Rpc.create ~network:routed () in
  for i = 0 to 99 do
    let dst = i mod 8 in
    let request_bytes = 40 + i and response_bytes = 200 + i in
    Network.send direct ~dst ~bytes:request_bytes ~category:Network.Request;
    Network.touch direct ~node:dst;
    Network.send direct ~dst ~bytes:response_bytes ~category:Network.Response;
    match exchange ~net:routed ~rpc ~dst ~request_bytes ~response_bytes with
    | Rpc.Answered { node; _ } -> Alcotest.(check int) "answered by dst" dst node
    | Rpc.Exhausted -> Alcotest.fail "zero plan must answer"
  done;
  (* A dead node historically cost one unanswered request and no touch. *)
  Network.send direct ~dst:5 ~bytes:77 ~category:Network.Request;
  (match
     Rpc.call rpc ~dst:5 ~request_bytes:77 ~handler:(fun ~node:_ -> Rpc.No_response) ()
   with
  | Rpc.Exhausted -> ()
  | Rpc.Answered _ -> Alcotest.fail "No_response must exhaust");
  List.iter
    (fun cat ->
      Alcotest.(check int)
        ("bytes " ^ Network.category_label cat)
        (Network.bytes direct cat) (Network.bytes routed cat);
      Alcotest.(check int)
        ("messages " ^ Network.category_label cat)
        (Network.messages direct cat)
        (Network.messages routed cat))
    [ Network.Request; Network.Response; Network.Cache_update; Network.Maintenance ];
  Alcotest.(check (array int)) "touches" (Network.touches direct)
    (Network.touches routed);
  Alcotest.(check (float 0.0)) "clock untouched" 0.0 (Rpc.now rpc)

let rpc_config ?(timeout = 0.5) ?(retries = 2) ?(hedge = false) () =
  { Rpc.default_config with timeout; retries; hedge; hedge_delay = 0.25 }

let rpc_retries_then_exhausts () =
  let metrics = Obs.Metrics.create () in
  let plan = Plan.create ~seed:9L (Plan.spec ~loss_rate:1.0 ()) in
  let handled = ref 0 in
  let rpc = Rpc.create ~metrics ~plan ~config:(rpc_config ~retries:2 ()) () in
  (match
     Rpc.call rpc ~dst:0 ~request_bytes:10
       ~handler:(fun ~node:_ -> incr handled; Rpc.Reply { bytes = 10; value = () })
       ()
   with
  | Rpc.Exhausted -> ()
  | Rpc.Answered _ -> Alcotest.fail "total loss must exhaust");
  Alcotest.(check int) "lost requests never reach the handler" 0 !handled;
  let total name = Obs.Metrics.counter_total (Obs.Metrics.snapshot metrics) name in
  Alcotest.(check int) "three attempts time out" 3
    (total "p2pindex_rpc_timeouts_total");
  Alcotest.(check int) "two retries" 2 (total "p2pindex_rpc_retries_total");
  Alcotest.(check int) "one exhaustion" 1 (total "p2pindex_rpc_exhausted_total");
  (* 3 timeouts plus 2 backoff pauses: at least 3 * timeout. *)
  Alcotest.(check bool) "clock advanced past the timeouts" true
    (Rpc.now rpc >= 3.0 *. 0.5)

let rpc_hedge_wins () =
  let metrics = Obs.Metrics.create () in
  (* The primary replica's messages always vanish; the hedge target is
     clean, so the hedged second request wins every call. *)
  let plan =
    Plan.create ~seed:4L
      ~node_overrides:[ (0, Plan.spec ~loss_rate:1.0 ()) ]
      (Plan.spec ())
  in
  let rpc =
    Rpc.create ~metrics ~plan ~config:(rpc_config ~retries:0 ~hedge:true ()) ()
  in
  (match
     Rpc.call rpc ~dst:0 ~hedge_dst:1 ~request_bytes:10
       ~handler:(fun ~node -> Rpc.Reply { bytes = 10; value = node })
       ()
   with
  | Rpc.Answered { value; node } ->
      Alcotest.(check int) "hedge target answered" 1 node;
      Alcotest.(check int) "handler saw the hedge target" 1 value
  | Rpc.Exhausted -> Alcotest.fail "hedge should have answered");
  let total name = Obs.Metrics.counter_total (Obs.Metrics.snapshot metrics) name in
  Alcotest.(check int) "hedge fired" 1 (total "p2pindex_rpc_hedges_total");
  Alcotest.(check int) "hedge won" 1 (total "p2pindex_rpc_hedges_won_total")

let rpc_lossy_oneway () =
  let net = Network.create ~node_count:4 () in
  let plan =
    Plan.create ~seed:2L (Plan.spec ~latency:(Plan.Constant 5.0) ())
  in
  let rpc = Rpc.create ~network:net ~plan () in
  let applied = ref 0 in
  Rpc.send_oneway ~lossy:true rpc ~dst:2 ~bytes:30 ~category:Network.Cache_update
    ~deliver:(fun () -> incr applied; true);
  Alcotest.(check int) "billed at send time" 30
    (Network.bytes net Network.Cache_update);
  Alcotest.(check int) "delayed, not applied yet" 0 !applied;
  Alcotest.(check int) "pending" 1 (Rpc.pending_deliveries rpc);
  Alcotest.(check int) "not due yet" 0 (Rpc.deliver_until rpc ~now:4.9);
  Alcotest.(check int) "due at latency" 1 (Rpc.deliver_until rpc ~now:5.0);
  Alcotest.(check int) "applied on arrival" 1 !applied;
  (* Total loss: billed, never applied. *)
  let dropped = Rpc.create ~network:net ~plan:(Plan.create ~seed:2L (Plan.spec ~loss_rate:1.0 ())) () in
  Rpc.send_oneway ~lossy:true dropped ~dst:2 ~bytes:30 ~category:Network.Cache_update
    ~deliver:(fun () -> incr applied; true);
  Alcotest.(check int) "lost one-way still billed" 60
    (Network.bytes net Network.Cache_update);
  Alcotest.(check int) "lost one-way never applied" 1 !applied;
  Alcotest.(check int) "nothing pending" 0 (Rpc.pending_deliveries dropped)

let walk_replicas_shape () =
  let probed = ref [] in
  let result, attempts =
    Rpc.walk_replicas ~replicas:[ 4; 7; 9 ]
      ~probe:(fun ~node ~rest ->
        probed := (node, List.length rest) :: !probed;
        if node = 7 then Some "hit" else None)
  in
  Alcotest.(check (option string)) "second replica answers" (Some "hit") result;
  Alcotest.(check int) "two probes" 2 attempts;
  Alcotest.(check (list (pair int int))) "placement order with rest"
    [ (4, 2); (7, 1) ] (List.rev !probed);
  let missing, attempts =
    Rpc.walk_replicas ~replicas:[ 1; 2 ] ~probe:(fun ~node:_ ~rest:_ -> None)
  in
  Alcotest.(check (option unit)) "no replica answers" None missing;
  Alcotest.(check int) "all probed" 2 attempts

(* ------------------------------------------------------------------ *)
(* Duplicate idempotence at the index: a plan that duplicates every
   message must not change any lookup answer — handlers run twice, the
   duplicate reply is suppressed. *)

let index_duplicate_idempotence () =
  let articles =
    Bib.Corpus.generate ~seed:7L (Bib.Corpus.default_config ~article_count:120)
  in
  let build ~plan =
    let resolver =
      Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:7L ~node_count:16 ())
    in
    let rpc = Rpc.create ~plan ~resolver () in
    let index = Bib.Bib_index.create ~rpc ~resolver () in
    Bib.Bib_index.publish_corpus index ~kind:Bib.Schemes.Simple articles;
    index
  in
  let clean = build ~plan:Plan.zero in
  let duplicating =
    build ~plan:(Plan.create ~seed:77L (Plan.spec ~duplicate_rate:1.0 ()))
  in
  Array.iteri
    (fun i article ->
      if i < 40 then begin
        let msd = Bib.Bib_query.msd article in
        let queries = msd :: Bib.Bib_query.generalizations msd in
        List.iter (fun q ->
        let show = function
          | Bib.Bib_index.File file -> "file " ^ file.Storage.Block_store.name
          | Bib.Bib_index.Children children ->
              "children "
              ^ String.concat "," (List.map Bib.Bib_query.to_string children)
          | Bib.Bib_index.Not_indexed -> "not-indexed"
        in
        Alcotest.(check string)
          ("lookup " ^ Bib.Bib_query.to_string q)
          (show (Bib.Bib_index.lookup_step clean q))
          (show (Bib.Bib_index.lookup_step duplicating q)))
          queries
      end)
    articles

(* ------------------------------------------------------------------ *)
(* Runner degeneration and recovery. *)

(* The hard degeneration claim: an inactive fault block (all rates zero,
   no hedging) must reproduce the plain run byte for byte — traffic,
   placement, cache behaviour and the metrics snapshot. *)
let faults_zero_equals_plain () =
  let base =
    {
      Sim.Runner.default_config with
      node_count = 50;
      article_count = 500;
      query_count = 1_000;
      scheme = Bib.Schemes.Simple;
      policy = Cache.Policy.lru 10;
    }
  in
  let plain = Sim.Runner.run base in
  let faulted =
    Sim.Runner.run { base with faults = Some Sim.Runner.default_faults }
  in
  Alcotest.(check bool) "default fault block is inactive" false
    (Sim.Runner.fault_active { base with faults = Some Sim.Runner.default_faults });
  let check_int what f =
    Alcotest.(check int) what (f plain) (f faulted)
  in
  let open Sim.Runner in
  check_int "request bytes" (fun r -> r.request_bytes);
  check_int "response bytes" (fun r -> r.response_bytes);
  check_int "cache bytes" (fun r -> r.cache_bytes);
  check_int "maintenance bytes" (fun r -> r.maintenance_bytes);
  check_int "publish bytes" (fun r -> r.publish_bytes);
  check_int "network messages" (fun r -> r.network_messages);
  check_int "hits" (fun r -> r.hits);
  check_int "errors" (fun r -> r.errors);
  check_int "unreachable" (fun r -> r.unreachable);
  check_int "rpc calls" (fun r -> r.rpc_calls);
  Alcotest.(check (array int)) "per-node touches" plain.node_touches
    faulted.node_touches;
  Alcotest.(check (array int)) "per-node cached keys" plain.cached_keys
    faulted.cached_keys;
  Alcotest.(check string) "metrics snapshot byte-identical"
    (Obs.Export.render_table plain.metrics)
    (Obs.Export.render_table faulted.metrics)

let faults_degrade_and_recover () =
  let base =
    {
      Sim.Runner.default_config with
      node_count = 50;
      article_count = 400;
      query_count = 800;
    }
  in
  let run ~retries ~hedge =
    Sim.Runner.run
      {
        base with
        faults =
          Some
            {
              Sim.Runner.default_faults with
              loss_rate = 0.25;
              rpc_retries = retries;
              hedge;
              fault_replication = 3;
            };
      }
  in
  let fragile = run ~retries:0 ~hedge:false in
  let hardened = run ~retries:2 ~hedge:true in
  Alcotest.(check bool) "loss without retries fails lookups" true
    (Sim.Runner.lookup_success_rate fragile < 0.8);
  Alcotest.(check bool) "retries + hedging recover success" true
    (Sim.Runner.lookup_success_rate hardened > 0.95);
  Alcotest.(check bool) "timeouts counted" true (hardened.Sim.Runner.rpc_timeouts > 0);
  Alcotest.(check bool) "retries counted" true (hardened.Sim.Runner.rpc_retries > 0);
  Alcotest.(check bool) "hedges counted" true (hardened.Sim.Runner.rpc_hedges > 0);
  Alcotest.(check bool) "lost messages counted" true
    (hardened.Sim.Runner.rpc_lost_messages > 0);
  (* Seed determinism end to end: the same faulty config replays
     bit-for-bit, metrics snapshot included. *)
  let replay = run ~retries:2 ~hedge:true in
  Alcotest.(check int) "same rpc timeouts" hardened.Sim.Runner.rpc_timeouts
    replay.Sim.Runner.rpc_timeouts;
  Alcotest.(check string) "faulty run replays byte-identically"
    (Obs.Export.render_table hardened.Sim.Runner.metrics)
    (Obs.Export.render_table replay.Sim.Runner.metrics)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let plan_determinism_property =
  QCheck.Test.make ~name:"plan verdicts are a pure function of the seed" ~count:50
    QCheck.(triple int64 (float_bound_exclusive 1.0) small_nat)
    (fun (seed, loss_rate, n) ->
      let loss_rate = Float.abs loss_rate in
      let spec =
        Plan.spec ~loss_rate ~duplicate_rate:(loss_rate /. 2.0)
          ~latency:(Plan.Exponential { mean = 0.01 })
          ()
      in
      let n = 1 + (n mod 64) in
      verdict_stream ~seed ~spec n = verdict_stream ~seed ~spec n)

let suite =
  [
    ( "faults:plan",
      [
        Alcotest.test_case "seeded verdict streams replay" `Quick
          plan_seed_determinism;
        Alcotest.test_case "loss rates respected" `Quick plan_rates_respected;
        Alcotest.test_case "latency distributions" `Quick plan_latency_distributions;
        Alcotest.test_case "override resolution" `Quick plan_override_resolution;
        Alcotest.test_case "zero plan and validation" `Quick plan_zero_and_validation;
      ]
      @ qcheck [ plan_determinism_property ] );
    ( "faults:outbox",
      [ Alcotest.test_case "time order, FIFO ties, flush" `Quick outbox_orders_deliveries ] );
    ( "dht:rpc",
      [
        Alcotest.test_case "zero plan = historical billing, byte for byte" `Quick
          rpc_zero_fault_byte_identity;
        Alcotest.test_case "total loss retries then exhausts" `Quick
          rpc_retries_then_exhausts;
        Alcotest.test_case "hedged request wins over a dead primary" `Quick
          rpc_hedge_wins;
        Alcotest.test_case "lossy one-ways: billed, delayed, droppable" `Quick
          rpc_lossy_oneway;
        Alcotest.test_case "walk_replicas placement order" `Quick walk_replicas_shape;
      ] );
    ( "faults:index",
      [
        Alcotest.test_case "duplicate deliveries are idempotent" `Quick
          index_duplicate_idempotence;
      ] );
    ( "faults:runner",
      [
        Alcotest.test_case "inactive faults = plain run, byte for byte" `Quick
          faults_zero_equals_plain;
        Alcotest.test_case "loss degrades, retries + hedging recover" `Quick
          faults_degrade_and_recover;
      ] );
  ]

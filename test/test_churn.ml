(* Churn subsystem: event-queue ordering, driver determinism, and the
   churn-0 degeneration of the runner to the static simulation. *)

module Q = Churn.Event_queue
module Driver = Churn.Driver
module Lifetime = Churn.Lifetime

let drain q =
  let rec go acc =
    match Q.pop q with Some cell -> go (cell :: acc) | None -> List.rev acc
  in
  go []

(* One property covers both ordering claims: the popped sequence must be
   exactly the stable sort of the push sequence by time — nondecreasing
   times, and FIFO order among equal times (the payload is the push
   index, so stability is observable). *)
let queue_order_property =
  QCheck.Test.make ~name:"pop order is the stable sort of the push order" ~count:300
    QCheck.(list small_nat)
    (fun raw ->
      let times = List.map (fun n -> float_of_int (n mod 20)) raw in
      let q : int Q.t = Q.create ~dummy:0 () in
      List.iteri (fun i time -> Q.push q ~time i) times;
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> Float.compare a b)
          (List.mapi (fun i time -> (time, i)) times)
      in
      drain q = expected)

let queue_fifo_ties () =
  let q : string Q.t = Q.create ~dummy:"" () in
  Q.push q ~time:5.0 "first";
  Q.push q ~time:5.0 "second";
  Q.push q ~time:1.0 "early";
  Q.push q ~time:5.0 "third";
  Alcotest.(check (list (pair (float 0.0) string)))
    "earlier first, ties in push order"
    [ (1.0, "early"); (5.0, "first"); (5.0, "second"); (5.0, "third") ]
    (drain q);
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Q.push q ~time:Float.nan "bad")

let queue_pop_until () =
  let q : int Q.t = Q.create ~dummy:0 () in
  Q.push q ~time:2.0 1;
  Q.push q ~time:7.0 2;
  Alcotest.(check (option (pair (float 0.0) int))) "within horizon" (Some (2.0, 1))
    (Q.pop_until q ~until:5.0);
  Alcotest.(check (option (pair (float 0.0) int))) "beyond horizon" None
    (Q.pop_until q ~until:5.0);
  Alcotest.(check int) "event kept" 1 (Q.length q)

let lifetime_samples_positive () =
  let g = Stdx.Prng.create ~seed:3L in
  List.iter
    (fun dist ->
      let sum = ref 0.0 in
      let n = 20_000 in
      for _ = 1 to n do
        let x = Lifetime.sample dist g in
        if not (x > 0.0 && Float.is_finite x) then
          Alcotest.failf "bad sample %g from %s" x (Lifetime.label dist);
        sum := !sum +. x
      done;
      (* The Pareto tail (alpha 1.5) converges slowly; only the
         exponential gets a tight empirical-mean check. *)
      match dist with
      | Lifetime.Exponential _ ->
          let empirical = !sum /. float_of_int n in
          if Float.abs (empirical -. Lifetime.mean dist) > 0.1 *. Lifetime.mean dist then
            Alcotest.failf "empirical mean %g too far from %g" empirical
              (Lifetime.mean dist)
      | Lifetime.Pareto _ -> ())
    [ Lifetime.exponential ~mean:30.0; Lifetime.pareto ~mean:30.0 () ]

(* Record a driver's full event schedule over a horizon. *)
let driver_schedule ~seed =
  let liveness = Dht.Liveness.create ~node_count:20 in
  let cfg =
    {
      Driver.session = Lifetime.exponential ~mean:40.0;
      downtime = Lifetime.exponential ~mean:10.0;
      republish_period = 25.0;
      repair_period = 60.0;
    }
  in
  let d = Driver.create ~seed ~liveness cfg in
  let events = ref [] in
  let record time tag = events := (time, tag) :: !events in
  Driver.run_until d ~until:300.0
    ~on_fail:(fun ~time n -> record time (Printf.sprintf "fail %d" n))
    ~on_join:(fun ~time n -> record time (Printf.sprintf "join %d" n))
    ~on_republish:(fun ~time -> record time "republish")
    ~on_repair:(fun ~time -> record time "repair");
  List.rev !events

let driver_deterministic () =
  let a = driver_schedule ~seed:11L in
  let b = driver_schedule ~seed:11L in
  Alcotest.(check (list (pair (float 0.0) string))) "same seed, same schedule" a b;
  Alcotest.(check bool) "schedule is non-trivial" true (List.length a > 50);
  let c = driver_schedule ~seed:12L in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  (* Times fire in nondecreasing order. *)
  ignore
    (List.fold_left
       (fun prev (time, _) ->
         if time < prev then Alcotest.failf "time went backwards: %g < %g" time prev;
         time)
       0.0 a)

let driver_alternates_per_node () =
  (* Each node strictly alternates fail/join, starting with a fail. *)
  let events = driver_schedule ~seed:7L in
  let state = Hashtbl.create 20 in
  List.iter
    (fun (_, tag) ->
      match String.split_on_char ' ' tag with
      | [ ("fail" | "join") as kind; node ] ->
          let prev = Hashtbl.find_opt state node in
          (match (kind, prev) with
          | "fail", (None | Some "join") | "join", Some "fail" -> ()
          | _ -> Alcotest.failf "node %s: %s after %s" node kind
                   (Option.value prev ~default:"nothing"));
          Hashtbl.replace state node kind
      | _ -> ())
    events

(* The hard degeneration claim: churn rate 0 (at replication 1) must
   reproduce the static runner byte for byte — same traffic, same
   placement, same cache behaviour. *)
let churn_zero_equals_static () =
  let base =
    {
      Sim.Runner.default_config with
      node_count = 50;
      article_count = 500;
      query_count = 1_000;
      scheme = Bib.Schemes.Simple;
      policy = Cache.Policy.lru 10;
    }
  in
  let static = Sim.Runner.run base in
  let churned =
    Sim.Runner.run
      {
        base with
        churn = Some { Sim.Runner.default_churn with churn_rate = 0.0; replication = 1 };
      }
  in
  let check_int what f =
    Alcotest.(check int) what (f static) (f churned)
  in
  let open Sim.Runner in
  check_int "request bytes" (fun r -> r.request_bytes);
  check_int "response bytes" (fun r -> r.response_bytes);
  check_int "cache bytes" (fun r -> r.cache_bytes);
  check_int "maintenance bytes" (fun r -> r.maintenance_bytes);
  check_int "publish bytes" (fun r -> r.publish_bytes);
  check_int "network messages" (fun r -> r.network_messages);
  check_int "hits" (fun r -> r.hits);
  check_int "hits at first node" (fun r -> r.hits_first_node);
  check_int "errors" (fun r -> r.errors);
  check_int "unreachable" (fun r -> r.unreachable);
  check_int "index bytes" (fun r -> r.index_bytes);
  check_int "article bytes" (fun r -> r.article_bytes);
  check_int "index mappings" (fun r -> r.index_mappings);
  Alcotest.(check (float 0.0)) "interactions mean" (interactions_mean static)
    (interactions_mean churned);
  Alcotest.(check (array int)) "per-node touches" static.node_touches churned.node_touches;
  Alcotest.(check (array int)) "per-node cached keys" static.cached_keys churned.cached_keys;
  Alcotest.(check (array int)) "per-node regular keys" static.regular_keys
    churned.regular_keys

let churn_degrades_availability () =
  let base =
    {
      Sim.Runner.default_config with
      node_count = 50;
      article_count = 500;
      query_count = 1_000;
    }
  in
  let run ~rate ~replication =
    Sim.Runner.run
      {
        base with
        churn =
          Some
            {
              Sim.Runner.default_churn with
              churn_rate = rate;
              replication;
              ttl = 60.0;
              republish_period = 20.0;
              repair_period = 8.0;
              query_rate = 20.0;
            };
      }
  in
  let fragile = run ~rate:0.02 ~replication:1 in
  let replicated = run ~rate:0.02 ~replication:3 in
  Alcotest.(check bool) "unreplicated churn loses sessions" true
    (Sim.Runner.availability fragile < 1.0);
  Alcotest.(check bool) "replication recovers availability" true
    (Sim.Runner.availability replicated > Sim.Runner.availability fragile);
  Alcotest.(check bool) "maintenance traffic billed" true
    (fragile.Sim.Runner.maintenance_bytes > 0)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "churn:event-queue",
      [
        Alcotest.test_case "FIFO ties and NaN rejection" `Quick queue_fifo_ties;
        Alcotest.test_case "pop_until horizon" `Quick queue_pop_until;
      ]
      @ qcheck [ queue_order_property ] );
    ( "churn:driver",
      [
        Alcotest.test_case "lifetime samples" `Quick lifetime_samples_positive;
        Alcotest.test_case "identical seeds, identical schedules" `Quick
          driver_deterministic;
        Alcotest.test_case "fail/join alternation" `Quick driver_alternates_per_node;
      ] );
    ( "churn:runner",
      [
        Alcotest.test_case "churn 0 = static, byte for byte" `Quick
          churn_zero_equals_static;
        Alcotest.test_case "availability degrades and recovers" `Quick
          churn_degrades_availability;
      ] );
  ]

(* Multi-entry DHT store and block store tests. *)

module Key = Hashing.Key
module Store = Storage.Store
module Block = Storage.Block_store

let resolver n = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:5L ~node_count:n ())

let k s = Key.of_string s

let multi_entry_registration () =
  let store : string Store.t = Store.create ~resolver:(resolver 10) () in
  Store.insert store ~key:(k "a") "one";
  Store.insert store ~key:(k "a") "two";
  Store.insert store ~key:(k "b") "three";
  Alcotest.(check (list string)) "multiple entries, most recent first" [ "two"; "one" ]
    (Store.lookup store (k "a"));
  Alcotest.(check (list string)) "other key isolated" [ "three" ] (Store.lookup store (k "b"));
  Alcotest.(check (list string)) "missing key" [] (Store.lookup store (k "zzz"));
  Alcotest.(check int) "key count" 2 (Store.key_count store);
  Alcotest.(check int) "entry count" 3 (Store.entry_count store)

let insert_unique_dedups () =
  let store : string Store.t = Store.create ~resolver:(resolver 10) () in
  Alcotest.(check bool) "first insert" true
    (Store.insert_unique ~equal:String.equal store ~key:(k "a") "x");
  Alcotest.(check bool) "duplicate rejected" false
    (Store.insert_unique ~equal:String.equal store ~key:(k "a") "x");
  Alcotest.(check bool) "different value accepted" true
    (Store.insert_unique ~equal:String.equal store ~key:(k "a") "y");
  Alcotest.(check int) "two entries" 2 (List.length (Store.lookup store (k "a")))

let remove_entries () =
  let store : int Store.t = Store.create ~resolver:(resolver 10) () in
  List.iter (Store.insert store ~key:(k "a")) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "remove evens" 2
    (Store.remove store ~key:(k "a") (fun v -> v mod 2 = 0));
  Alcotest.(check (list int)) "odds remain" [ 3; 1 ] (Store.lookup store (k "a"));
  Alcotest.(check int) "remove all" 2 (Store.remove store ~key:(k "a") (fun _ -> true));
  Alcotest.(check bool) "key gone" false (Store.mem store (k "a"));
  Alcotest.(check int) "remove from missing key" 0
    (Store.remove store ~key:(k "a") (fun _ -> true))

let remove_key_wholesale () =
  let store : int Store.t = Store.create ~resolver:(resolver 10) () in
  List.iter (Store.insert store ~key:(k "a")) [ 1; 2; 3 ];
  Alcotest.(check int) "three removed" 3 (Store.remove_key store (k "a"));
  Alcotest.(check int) "idempotent" 0 (Store.remove_key store (k "a"))

let placement_follows_resolver () =
  let r = resolver 10 in
  let store : unit Store.t = Store.create ~resolver:r () in
  for i = 1 to 100 do
    let key = k (Printf.sprintf "key-%d" i) in
    Store.insert store ~key ();
    Alcotest.(check int) "node_of matches resolver"
      (Dht.Resolver.responsible r key)
      (Store.node_of store key)
  done;
  let per_node = Store.keys_per_node store in
  Alcotest.(check int) "keys distributed over nodes" 100 (Array.fold_left ( + ) 0 per_node)

let entries_per_node_counts_all () =
  let store : int Store.t = Store.create ~resolver:(resolver 4) () in
  Store.insert store ~key:(k "a") 1;
  Store.insert store ~key:(k "a") 2;
  Store.insert store ~key:(k "b") 3;
  Alcotest.(check int) "entries sum" 3
    (Array.fold_left ( + ) 0 (Store.entries_per_node store));
  Alcotest.(check int) "keys sum" 2 (Array.fold_left ( + ) 0 (Store.keys_per_node store))

let fold_visits_everything () =
  let store : int Store.t = Store.create ~resolver:(resolver 7) () in
  for i = 1 to 50 do
    Store.insert store ~key:(k (string_of_int (i mod 10))) i
  done;
  let total = Store.fold store ~init:0 ~f:(fun acc _k entries -> acc + List.length entries) in
  Alcotest.(check int) "fold reaches all entries" 50 total

let file_testable =
  Alcotest.testable
    (fun ppf (f : Block.file) -> Format.fprintf ppf "%s (%d B)" f.name f.size_bytes)
    (fun a b -> String.equal a.Block.name b.Block.name && a.size_bytes = b.size_bytes)

let block_store_basics () =
  let blocks = Block.create ~resolver:(resolver 10) () in
  let file = { Block.name = "article-1.pdf"; size_bytes = 250_000 } in
  Block.put blocks ~key:(k "d1") file;
  Alcotest.(check bool) "present" true (Block.mem blocks (k "d1"));
  Alcotest.(check (option file_testable)) "stored file" (Some file) (Block.get blocks (k "d1"));
  Alcotest.(check int) "total bytes" 250_000 (Block.total_bytes blocks);
  (* Re-putting replaces, not accumulates. *)
  Block.put blocks ~key:(k "d1") { file with size_bytes = 100 };
  Alcotest.(check int) "replaced" 100 (Block.total_bytes blocks);
  Alcotest.(check int) "one file" 1 (Block.file_count blocks);
  Alcotest.(check bool) "delete" true (Block.delete blocks (k "d1"));
  Alcotest.(check bool) "delete is idempotent" false (Block.delete blocks (k "d1"));
  Alcotest.(check (option file_testable)) "gone" None (Block.get blocks (k "d1"))

module Replicated = Storage.Replicated_store

let replicated_basics () =
  let store : string Replicated.t = Replicated.create ~resolver:(resolver 10) ~replication:3 () in
  Replicated.insert store ~key:(k "a") "x";
  Alcotest.(check (list string)) "lookup" [ "x" ] (Replicated.lookup store (k "a"));
  Alcotest.(check bool) "available" true (Replicated.available store (k "a"));
  Alcotest.(check int) "one key" 1 (Replicated.key_count store);
  Alcotest.(check int) "three replica entries" 3 (Replicated.total_replica_entries store);
  Alcotest.(check (list string)) "missing key" [] (Replicated.lookup store (k "nope"))

let replicated_survives_primary_failure () =
  let r = resolver 10 in
  let store : int Replicated.t = Replicated.create ~resolver:r ~replication:3 () in
  Replicated.insert store ~key:(k "a") 1;
  let primary = Dht.Resolver.responsible r (k "a") in
  Replicated.fail_node store primary;
  Alcotest.(check bool) "primary down" false (Replicated.alive store primary);
  Alcotest.(check (list int)) "served by a replica" [ 1 ] (Replicated.lookup store (k "a"));
  (* Fail every replica: the key becomes unavailable. *)
  List.iter (Replicated.fail_node store) (Dht.Resolver.replicas r (k "a") 3);
  Alcotest.(check bool) "all replicas down" false (Replicated.available store (k "a"));
  Alcotest.(check (list int)) "lookup empty" [] (Replicated.lookup store (k "a"));
  (* Revival restores it. *)
  Replicated.revive_node store primary;
  Alcotest.(check (list int)) "revived" [ 1 ] (Replicated.lookup store (k "a"))

let replicated_single_replica_is_fragile () =
  let r = resolver 10 in
  let store : int Replicated.t = Replicated.create ~resolver:r ~replication:1 () in
  Replicated.insert store ~key:(k "a") 1;
  Replicated.fail_node store (Dht.Resolver.responsible r (k "a"));
  Alcotest.(check bool) "gone with one replica" false (Replicated.available store (k "a"))

let replicated_all_replicas_failed () =
  let r = resolver 6 in
  let store : int Replicated.t = Replicated.create ~resolver:r ~replication:3 () in
  Replicated.insert store ~key:(k "a") 1;
  Replicated.insert store ~key:(k "b") 2;
  List.iter (Replicated.fail_node store) (Dht.Resolver.replicas r (k "a") 3);
  Alcotest.(check bool) "key a unavailable" false (Replicated.available store (k "a"));
  Alcotest.(check (list int)) "key a lookup empty" [] (Replicated.lookup store (k "a"));
  (* Repair cannot re-home a key with no live holder: it stays lost until
     a replica comes back or the publisher republishes. *)
  let restored = ref 0 in
  ignore
    (Replicated.repair ~on_restore:(fun ~node:_ _ -> incr restored) store : int);
  Alcotest.(check bool) "still unavailable after repair" false
    (Replicated.available store (k "a"));
  (* Contents were kept, not dropped: one revival brings the key back. *)
  Replicated.revive_node store (Dht.Resolver.responsible r (k "a"));
  Alcotest.(check (list int)) "revival restores" [ 1 ] (Replicated.lookup store (k "a"))

let replicated_fail_is_idempotent () =
  let r = resolver 6 in
  let store : int Replicated.t = Replicated.create ~resolver:r ~replication:2 () in
  Replicated.insert store ~key:(k "a") 1;
  let primary = Dht.Resolver.responsible r (k "a") in
  Replicated.fail_node store primary;
  (* Failing an already-failed node changes nothing. *)
  Replicated.fail_node store primary;
  Alcotest.(check bool) "still down" false (Replicated.alive store primary);
  Alcotest.(check (list int)) "replica still answers" [ 1 ]
    (Replicated.lookup store (k "a"));
  (* One revival undoes any number of fails — dead/alive is a set, not a
     counter. *)
  Replicated.revive_node store primary;
  Alcotest.(check bool) "one revive suffices" true (Replicated.alive store primary)

let ring_replicas_wrap_around () =
  (* r = node_count: every node, once, starting at the primary. *)
  Alcotest.(check (list int)) "full ring from 3" [ 3; 4; 0; 1; 2 ]
    (Dht.Resolver.ring_replicas ~node_count:5 ~primary:3 5);
  (* r > node_count: capped, no duplicates from a second lap. *)
  Alcotest.(check (list int)) "capped beyond node count" [ 3; 4; 0; 1; 2 ]
    (Dht.Resolver.ring_replicas ~node_count:5 ~primary:3 12);
  Alcotest.(check (list int)) "single node network" [ 0 ]
    (Dht.Resolver.ring_replicas ~node_count:1 ~primary:0 4)

let replicated_validation () =
  Alcotest.check_raises "replication >= 1"
    (Invalid_argument "Replicated_store.create: need at least one replica") (fun () ->
      ignore (Replicated.create ~resolver:(resolver 4) ~replication:0 () : int Replicated.t))

let resolver_replicas_distinct () =
  let r = resolver 10 in
  let nodes = Dht.Resolver.replicas r (k "key") 4 in
  Alcotest.(check int) "four replicas" 4 (List.length nodes);
  Alcotest.(check int) "all distinct" 4 (List.length (List.sort_uniq Int.compare nodes));
  (match nodes with
  | primary :: _ ->
      Alcotest.(check int) "primary first" (Dht.Resolver.responsible r (k "key")) primary
  | [] -> Alcotest.fail "no replicas");
  (* More replicas than nodes: capped at the network size. *)
  Alcotest.(check int) "capped at node count" 10
    (List.length (Dht.Resolver.replicas r (k "key") 25))

let store_roundtrip_property =
  QCheck.Test.make ~name:"insert then lookup finds every entry" ~count:200
    QCheck.(list (pair (string_of_size (QCheck.Gen.int_range 1 12)) small_int))
    (fun pairs ->
      let store : int Store.t = Store.create ~resolver:(resolver 16) () in
      List.iter (fun (name, v) -> Store.insert store ~key:(k name) v) pairs;
      List.for_all (fun (name, v) -> List.mem v (Store.lookup store (k name))) pairs)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "storage",
      [
        Alcotest.test_case "multi-entry registration" `Quick multi_entry_registration;
        Alcotest.test_case "insert_unique dedups" `Quick insert_unique_dedups;
        Alcotest.test_case "remove with predicate" `Quick remove_entries;
        Alcotest.test_case "remove_key" `Quick remove_key_wholesale;
        Alcotest.test_case "placement follows resolver" `Quick placement_follows_resolver;
        Alcotest.test_case "entries vs keys per node" `Quick entries_per_node_counts_all;
        Alcotest.test_case "fold" `Quick fold_visits_everything;
        Alcotest.test_case "block store" `Quick block_store_basics;
      ]
      @ qcheck [ store_roundtrip_property ] );
    ( "storage:replication",
      [
        Alcotest.test_case "basics" `Quick replicated_basics;
        Alcotest.test_case "survives primary failure" `Quick
          replicated_survives_primary_failure;
        Alcotest.test_case "single replica fragile" `Quick
          replicated_single_replica_is_fragile;
        Alcotest.test_case "all replicas failed" `Quick replicated_all_replicas_failed;
        Alcotest.test_case "fail_node idempotent" `Quick replicated_fail_is_idempotent;
        Alcotest.test_case "ring_replicas wrap-around" `Quick ring_replicas_wrap_around;
        Alcotest.test_case "validation" `Quick replicated_validation;
        Alcotest.test_case "resolver replica sets" `Quick resolver_replicas_distinct;
      ] );
  ]

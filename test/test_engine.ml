(* The concurrent session engine: byte-for-byte degeneration to the
   sequential runner (static and churned, metrics snapshot included),
   singleflight coalescing on the hot-spot workload, byte conservation at
   any concurrency, and argument validation. *)

module Runner = Sim.Runner
module Engine = Sim.Engine
module Summary = Stdx.Stats.Summary

let small_config =
  {
    Runner.default_config with
    node_count = 50;
    article_count = 400;
    query_count = 500;
    scheme = Bib.Schemes.Simple;
    policy = Cache.Policy.lru 10;
  }

(* Nonzero latency gives probes a virtual-time width (the coalescing
   window); no loss and a generous timeout keep every exchange intact, so
   traffic differences are scheduling and coalescing alone. *)
let latency_faults =
  Some { Runner.default_faults with latency_mean = 0.05; rpc_timeout = 50.0 }

let snapshot_string snapshot =
  Obs.Json.to_string (Obs.Export.snapshot_to_json snapshot)

let check_summary what a b =
  Alcotest.(check int) (what ^ " count") (Summary.count a) (Summary.count b);
  Alcotest.(check (float 0.0)) (what ^ " total") (Summary.total a) (Summary.total b);
  Alcotest.(check (float 0.0)) (what ^ " min") (Summary.min a) (Summary.min b);
  Alcotest.(check (float 0.0)) (what ^ " max") (Summary.max a) (Summary.max b)

let check_reports_equal (seq : Runner.report) (eng : Runner.report) =
  let open Runner in
  let check_int what f = Alcotest.(check int) what (f seq) (f eng) in
  check_int "request bytes" (fun r -> r.request_bytes);
  check_int "response bytes" (fun r -> r.response_bytes);
  check_int "cache bytes" (fun r -> r.cache_bytes);
  check_int "maintenance bytes" (fun r -> r.maintenance_bytes);
  check_int "publish bytes" (fun r -> r.publish_bytes);
  check_int "network messages" (fun r -> r.network_messages);
  check_int "hits" (fun r -> r.hits);
  check_int "hits at first node" (fun r -> r.hits_first_node);
  check_int "errors" (fun r -> r.errors);
  check_int "unreachable" (fun r -> r.unreachable);
  check_int "index bytes" (fun r -> r.index_bytes);
  check_int "index mappings" (fun r -> r.index_mappings);
  check_int "rpc calls" (fun r -> r.rpc_calls);
  check_int "rpc timeouts" (fun r -> r.rpc_timeouts);
  check_summary "interactions" seq.interactions eng.interactions;
  check_summary "error probes" seq.error_probes eng.error_probes;
  Alcotest.(check (array int)) "per-node touches" seq.node_touches eng.node_touches;
  Alcotest.(check (array int)) "per-node cached keys" seq.cached_keys eng.cached_keys;
  Alcotest.(check (array int)) "per-node regular keys" seq.regular_keys eng.regular_keys;
  Alcotest.(check string) "metrics snapshot" (snapshot_string seq.metrics)
    (snapshot_string eng.metrics)

(* The hard degeneration claim: concurrency 1 (coalescing off) is the
   sequential runner byte for byte — report and metrics snapshot. *)
let engine_degenerates_static () =
  let seq = Runner.run small_config in
  let eng = Engine.run ~concurrency:1 small_config in
  Alcotest.(check int) "no coalesced probes" 0 eng.Engine.coalesced;
  Alcotest.(check int) "no queued latency samples" 0
    (Summary.count eng.Engine.session_latency);
  check_reports_equal seq eng.Engine.base

let engine_degenerates_churned () =
  let config =
    {
      small_config with
      faults = latency_faults;
      churn =
        Some
          {
            Runner.default_churn with
            churn_rate = 0.004;
            replication = 2;
            ttl = 60.0;
            republish_period = 20.0;
            repair_period = 8.0;
            query_rate = 20.0;
          };
    }
  in
  let seq = Runner.run config in
  let eng = Engine.run ~concurrency:1 config in
  check_reports_equal seq eng.Engine.base

(* The coalescing claim (the Fig. 15 hot spots made useful): with enough
   overlapping sessions, identical in-flight probes merge — the counter
   moves and normal traffic per query strictly drops, with only the small
   consultation tickets appearing as cache traffic. *)
let coalescing_reduces_normal_traffic () =
  let config =
    {
      small_config with
      policy = Cache.Policy.no_cache;
      faults = latency_faults;
    }
  in
  let plain = Engine.run ~concurrency:16 config in
  let merged = Engine.run ~concurrency:16 ~coalesce:true config in
  Alcotest.(check int) "no merges with coalescing off" 0 plain.Engine.coalesced;
  Alcotest.(check bool) "probes coalesced" true (merged.Engine.coalesced > 0);
  Alcotest.(check bool) "sessions actually overlapped" true
    (plain.Engine.peak_in_flight > 1);
  Alcotest.(check bool) "normal traffic strictly reduced" true
    (Runner.normal_traffic_per_query merged.Engine.base
    < Runner.normal_traffic_per_query plain.Engine.base);
  Alcotest.(check bool) "followers billed consultation tickets" true
    (merged.Engine.base.Runner.cache_bytes > plain.Engine.base.Runner.cache_bytes)

(* Without coalescing the engine only reorders work: whatever the
   concurrency, the billed bytes are those of the sequential run.  (The
   workload is cache-free so sessions share no mutable state, and the
   generous timeout keeps the fault plan from dropping anything.) *)
let engine_conserves_bytes =
  let config =
    {
      small_config with
      query_count = 300;
      policy = Cache.Policy.no_cache;
      faults = latency_faults;
    }
  in
  let seq = lazy (Runner.run config) in
  QCheck.Test.make ~count:4 ~name:"engine conserves bytes at any concurrency"
    QCheck.(int_range 2 32)
    (fun concurrency ->
      let seq = Lazy.force seq in
      let eng = (Engine.run ~concurrency config).Engine.base in
      seq.Runner.request_bytes = eng.Runner.request_bytes
      && seq.Runner.response_bytes = eng.Runner.response_bytes
      && seq.Runner.cache_bytes = eng.Runner.cache_bytes
      && seq.Runner.network_messages = eng.Runner.network_messages
      && Summary.count seq.Runner.interactions
         = Summary.count eng.Runner.interactions)

let engine_validates_arguments () =
  Alcotest.check_raises "concurrency 0 rejected"
    (Invalid_argument "Engine.run: concurrency must be >= 1") (fun () ->
      ignore (Engine.run ~concurrency:0 small_config));
  Alcotest.check_raises "coalescing alone rejected"
    (Invalid_argument "Engine.run: coalescing needs concurrency > 1") (fun () ->
      ignore (Engine.run ~coalesce:true small_config));
  Alcotest.check_raises "zero queries rejected"
    (Invalid_argument "Runner.run: nonsensical configuration") (fun () ->
      ignore (Runner.run { small_config with query_count = 0 }));
  Alcotest.check_raises "empty event list rejected"
    (Invalid_argument "Runner.run: nonsensical configuration") (fun () ->
      ignore (Runner.run ~events:[] small_config))

(* The derived metrics never divide by a zero query count: a report whose
   interaction summary is empty yields zeros (and full availability), not
   NaNs. *)
let derived_metrics_survive_zero_queries () =
  let r = Runner.run { small_config with query_count = 10 } in
  let empty = { r with Runner.interactions = Summary.create () } in
  let finite what v = Alcotest.(check bool) (what ^ " is finite") false (Float.is_nan v) in
  finite "interactions mean" (Runner.interactions_mean empty);
  Alcotest.(check (float 0.0)) "normal traffic" 0.0
    (Runner.normal_traffic_per_query empty);
  Alcotest.(check (float 0.0)) "cache traffic" 0.0
    (Runner.cache_traffic_per_query empty);
  Alcotest.(check (float 0.0)) "maintenance traffic" 0.0
    (Runner.maintenance_traffic_per_query empty);
  Alcotest.(check (float 0.0)) "hit ratio" 0.0 (Runner.hit_ratio empty);
  Alcotest.(check (float 0.0)) "availability" 1.0 (Runner.availability empty)

(* --- The sharded engine: partition determinism and worker invariance. --- *)

module Sharded = Sim.Sharded

let check_engine_reports_equal (a : Engine.report) (b : Engine.report) =
  check_reports_equal a.Engine.base b.Engine.base;
  Alcotest.(check int) "coalesced" a.Engine.coalesced b.Engine.coalesced;
  Alcotest.(check int) "peak in flight" a.Engine.peak_in_flight b.Engine.peak_in_flight;
  check_summary "session latency" a.Engine.session_latency b.Engine.session_latency

(* One shard IS the engine run: report and metrics snapshot byte for byte. *)
let sharded_degenerates () =
  let sr = Sharded.run small_config in
  let eng = Engine.run small_config in
  Alcotest.(check int) "one shard" 1 sr.Sharded.shard_count;
  Alcotest.(check int) "one worker" 1 sr.Sharded.domain_count;
  Alcotest.(check int) "per-shard singleton" 1 (Array.length sr.Sharded.per_shard);
  check_engine_reports_equal sr.Sharded.engine eng

(* The worker axis is pure scheduling: at fixed shards, every domain
   count produces the identical merged report — per-node arrays and
   metrics snapshot included. *)
let sharded_identical_across_domains () =
  let run domains = Sharded.run ~shards:4 ~domains small_config in
  let d1 = run 1 and d2 = run 2 and d4 = run 4 in
  Alcotest.(check int) "workers clamped" 2 d2.Sharded.domain_count;
  check_engine_reports_equal d1.Sharded.engine d2.Sharded.engine;
  check_engine_reports_equal d1.Sharded.engine d4.Sharded.engine;
  Array.iteri
    (fun s e -> check_engine_reports_equal e d2.Sharded.per_shard.(s))
    d1.Sharded.per_shard

(* The merge is a sum of isolated shards: every additive field of the
   merged report equals the sum over per-shard reports, and the per-node
   arrays concatenate in shard order. *)
let sharded_merge_is_shard_sum () =
  let sr = Sharded.run ~shards:3 small_config in
  let merged = sr.Sharded.engine.Engine.base in
  let shard_sum f =
    Array.fold_left (fun acc e -> acc + f e.Engine.base) 0 sr.Sharded.per_shard
  in
  Alcotest.(check int) "request bytes" merged.Runner.request_bytes
    (shard_sum (fun r -> r.Runner.request_bytes));
  Alcotest.(check int) "network messages" merged.Runner.network_messages
    (shard_sum (fun r -> r.Runner.network_messages));
  Alcotest.(check int) "errors" merged.Runner.errors
    (shard_sum (fun r -> r.Runner.errors));
  Alcotest.(check int) "nodes covered" small_config.Runner.node_count
    (Array.length merged.Runner.node_touches);
  Alcotest.(check (array int)) "touches concatenate in shard order"
    (Array.concat
       (Array.to_list
          (Array.map (fun e -> e.Engine.base.Runner.node_touches) sr.Sharded.per_shard)))
    merged.Runner.node_touches;
  Alcotest.(check int) "queries covered" small_config.Runner.query_count
    (Summary.count merged.Runner.interactions)

(* Property: over random shard/domain choices, the merged report only
   depends on the shard count — never on the worker count. *)
let sharded_worker_invariance =
  let tiny =
    {
      small_config with
      node_count = 40;
      article_count = 150;
      query_count = 200;
    }
  in
  QCheck.Test.make ~count:6 ~name:"sharded report independent of domains"
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (shards, domains) ->
      let base = Sharded.run ~shards ~domains:1 tiny in
      let par = Sharded.run ~shards ~domains tiny in
      let b = base.Sharded.engine.Engine.base
      and p = par.Sharded.engine.Engine.base in
      b.Runner.request_bytes = p.Runner.request_bytes
      && b.Runner.response_bytes = p.Runner.response_bytes
      && b.Runner.errors = p.Runner.errors
      && b.Runner.node_touches = p.Runner.node_touches
      && snapshot_string b.Runner.metrics = snapshot_string p.Runner.metrics)

let sharded_validates_arguments () =
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Sharded.run: shards must be >= 1") (fun () ->
      ignore (Sharded.run ~shards:0 small_config));
  Alcotest.check_raises "zero domains rejected"
    (Invalid_argument "Sharded.run: domains must be >= 1") (fun () ->
      ignore (Sharded.run ~domains:0 small_config));
  Alcotest.check_raises "empty shard rejected"
    (Invalid_argument
       "Sharded.run: every shard needs at least one node, one article and one \
        query") (fun () ->
      ignore (Sharded.run ~shards:1000 small_config));
  let churned =
    {
      small_config with
      churn = Some { Runner.default_churn with replication = 30 };
    }
  in
  Alcotest.check_raises "replication must fit the smallest shard"
    (Invalid_argument
       "Sharded.run: the smallest shard cannot hold the replication factor \
        (replication needs that many distinct nodes per shard)") (fun () ->
      ignore (Sharded.run ~shards:4 churned));
  Alcotest.check_raises "replication beyond the population rejected up front"
    (Invalid_argument
       "Runner.run: replication exceeds node_count (every replica needs a \
        distinct node)") (fun () ->
      ignore (Runner.run { churned with node_count = 20 }));
  Alcotest.check_raises "profiling needs one worker"
    (Invalid_argument "Sharded.run: profiling requires a single worker domain")
    (fun () ->
      ignore
        (Sharded.run ~shards:4 ~domains:2 ~phases:(Obs.Phase.create ())
           small_config))

let suite =
  [
    ( "engine:degeneration",
      [
        Alcotest.test_case "concurrency 1 = sequential (static)" `Quick
          engine_degenerates_static;
        Alcotest.test_case "concurrency 1 = sequential (churned)" `Quick
          engine_degenerates_churned;
      ] );
    ( "engine:coalescing",
      [
        Alcotest.test_case "coalescing reduces normal traffic" `Quick
          coalescing_reduces_normal_traffic;
        QCheck_alcotest.to_alcotest engine_conserves_bytes;
      ] );
    ( "engine:validation",
      [
        Alcotest.test_case "argument validation" `Quick engine_validates_arguments;
        Alcotest.test_case "zero-query derived metrics" `Quick
          derived_metrics_survive_zero_queries;
      ] );
    ( "engine:sharded",
      [
        Alcotest.test_case "one shard = engine run" `Quick sharded_degenerates;
        Alcotest.test_case "byte-identical across domains" `Quick
          sharded_identical_across_domains;
        Alcotest.test_case "merge is the shard sum" `Quick sharded_merge_is_shard_sum;
        QCheck_alcotest.to_alcotest sharded_worker_invariance;
        Alcotest.test_case "argument validation" `Quick sharded_validates_arguments;
      ] );
  ]

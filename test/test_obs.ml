(* The telemetry subsystem: metrics registry, lookup tracing, exporters —
   and the wiring through the network, index, cache and simulation layers. *)

module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Json = Obs.Json

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Counters, gauges, and instrument identity. *)

let counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter r "test_total" in
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:4 c;
  Alcotest.(check int) "value" 5 (Metrics.Counter.value c);
  Alcotest.(check bool) "negative increment rejected" true
    (match Metrics.Counter.incr ~by:(-1) c with
    | exception Invalid_argument _ -> true
    | () -> false);
  Metrics.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Metrics.Counter.value c)

let counter_identity () =
  let r = Metrics.create () in
  let a = Metrics.counter r ~labels:[ ("x", "1"); ("y", "2") ] "test_total" in
  let b = Metrics.counter r ~labels:[ ("y", "2"); ("x", "1") ] "test_total" in
  let other = Metrics.counter r ~labels:[ ("x", "1"); ("y", "3") ] "test_total" in
  Metrics.Counter.incr a;
  Metrics.Counter.incr b;
  (* Label order is irrelevant: a and b are the same instrument. *)
  Alcotest.(check int) "same series" 2 (Metrics.Counter.value a);
  Alcotest.(check int) "other series untouched" 0 (Metrics.Counter.value other)

let kind_mismatch_rejected () =
  let r = Metrics.create () in
  ignore (Metrics.counter r "test_total");
  Alcotest.(check bool) "gauge under a counter name" true
    (match Metrics.gauge r "test_total" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "malformed name" true
    (match Metrics.counter r "9bad name" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let gauge_basics () =
  let r = Metrics.create () in
  let g = Metrics.gauge r "test_gauge" in
  Metrics.Gauge.set g 2.5;
  Metrics.Gauge.add g 1.5;
  Alcotest.(check (float 1e-9)) "value" 4.0 (Metrics.Gauge.value g)

(* ------------------------------------------------------------------ *)
(* Histograms. *)

let histogram_observe_and_quantile () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram r ~buckets:[| 1.0; 10.0; 100.0 |] "test_histogram"
  in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 3.0; 4.0; 7.0; 40.0 ];
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 54.5 (Metrics.Histogram.sum h);
  (match Metrics.Histogram.cumulative h with
  | [ (1.0, 1); (10.0, 4); (100.0, 5); (bound, 5) ] ->
      Alcotest.(check bool) "overflow bound" true (bound = infinity)
  | other ->
      Alcotest.failf "unexpected buckets: %d entries" (List.length other));
  let p50 = Metrics.Histogram.quantile h 0.5 in
  (* The median observation (4.0) lives in the (1, 10] bucket. *)
  Alcotest.(check bool) "p50 within bucket" true (p50 >= 1.0 && p50 <= 10.0)

let hist_monotone_prop =
  QCheck.Test.make ~name:"histogram cumulative counts are monotone" ~count:200
    QCheck.(list (float_range 0.0 2000.0))
    (fun samples ->
      let r = Metrics.create () in
      let h = Metrics.histogram r "prop_histogram" in
      List.iter (Metrics.Histogram.observe h) samples;
      let cum = Metrics.Histogram.cumulative h in
      let counts = List.map snd cum in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | [ _ ] | [] -> true
      in
      monotone counts
      && List.length samples = Metrics.Histogram.count h
      && snd (List.nth cum (List.length cum - 1)) = List.length samples)

let quantile_in_bounds_prop =
  QCheck.Test.make ~name:"histogram quantile stays within observed range" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range 0.0 2000.0))
              (float_range 0.0 1.0))
    (fun (samples, q) ->
      let r = Metrics.create () in
      let h = Metrics.histogram r "prop_quantile" in
      List.iter (Metrics.Histogram.observe h) samples;
      let lo = List.fold_left Float.min infinity samples in
      let hi = List.fold_left Float.max neg_infinity samples in
      let est = Metrics.Histogram.quantile h q in
      est >= lo && est <= hi)

(* ------------------------------------------------------------------ *)
(* Traces. *)

let emit tracer ?(cache_hit = false) ~seq:_ query outcome =
  Trace.span tracer ~query ~node:3 ~route_hops:2 ~cache_hit ~result_count:1
    ~request_bytes:40 ~response_bytes:90 ~outcome ()

let trace_span_ordering () =
  let tracer = Trace.create () in
  Trace.begin_trace tracer ~root:"/article/author/last/Smith";
  emit tracer ~seq:0 "/article/author/last/Smith" Trace.Refined;
  emit tracer ~seq:1 "/article[author[last/Smith]][year/2001]" Trace.Refined;
  emit tracer ~seq:2 "msd" Trace.Msd_reached;
  Trace.end_trace tracer;
  match Trace.traces tracer with
  | [ t ] ->
      Alcotest.(check string) "root" "/article/author/last/Smith" t.Trace.root;
      Alcotest.(check (list int)) "seq in order" [ 0; 1; 2 ]
        (List.map (fun s -> s.Trace.seq) t.Trace.spans);
      Alcotest.(check bool) "same trace id" true
        (List.for_all (fun s -> s.Trace.trace_id = t.Trace.id) t.Trace.spans)
  | other -> Alcotest.failf "expected one trace, got %d" (List.length other)

let trace_ring_buffer () =
  let tracer = Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Trace.begin_trace tracer ~root:(Printf.sprintf "q%d" i);
    emit tracer ~seq:0 (Printf.sprintf "q%d" i) Trace.Not_found;
    Trace.end_trace tracer
  done;
  Alcotest.(check int) "kept" 2 (Trace.trace_count tracer);
  Alcotest.(check int) "dropped" 3 (Trace.dropped tracer);
  Alcotest.(check (list string)) "oldest evicted first" [ "q4"; "q5" ]
    (List.map (fun t -> t.Trace.root) (Trace.traces tracer))

let jsonl_roundtrip () =
  let tracer = Trace.create () in
  Trace.begin_trace tracer ~root:"a \"quoted\" root";
  emit tracer ~seq:0 "a \"quoted\" root" Trace.Refined;
  emit tracer ~cache_hit:true ~seq:1 "b\nnewline" Trace.Generalized;
  Trace.end_trace tracer;
  Trace.begin_trace tracer ~root:"second";
  emit tracer ~seq:0 "second" Trace.Msd_reached;
  Trace.end_trace tracer;
  let jsonl = Trace.to_jsonl tracer in
  match Trace.spans_of_jsonl jsonl with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok spans ->
      let original = List.concat_map (fun t -> t.Trace.spans) (Trace.traces tracer) in
      Alcotest.(check bool) "spans survive the round-trip" true (spans = original);
      let regrouped = Trace.traces_of_spans spans in
      Alcotest.(check (list string)) "regrouped roots" [ "a \"quoted\" root"; "second" ]
        (List.map (fun t -> t.Trace.root) regrouped)

let span_json_roundtrip_prop =
  let span_gen =
    QCheck.Gen.(
      map
        (fun (query, (a, b, c), (d, e), hit, outcome) ->
          {
            Trace.trace_id = a;
            seq = b;
            query;
            node = c;
            route_hops = d;
            cache_hit = hit;
            result_count = e;
            request_bytes = a + d;
            response_bytes = b + e;
            outcome;
          })
        (tup5 string
           (tup3 (int_bound 10_000) (int_bound 100) (int_bound 500))
           (tup2 (int_bound 50) (int_bound 200))
           bool
           (oneofl Trace.[ Msd_reached; Refined; Generalized; Not_found ])))
  in
  QCheck.Test.make ~name:"span JSON round-trip" ~count:300
    (QCheck.make span_gen)
    (fun span -> Trace.span_of_json (Trace.span_to_json span) = Ok span)

(* ------------------------------------------------------------------ *)
(* Exporters. *)

let populated_registry () =
  let r = Metrics.create () in
  Metrics.Counter.incr ~by:7
    (Metrics.counter r ~help:"a counter" ~labels:[ ("k", "v") ] "export_total");
  Metrics.Gauge.set (Metrics.gauge r ~help:"a gauge" "export_gauge") 2.5;
  let h = Metrics.histogram r ~buckets:[| 1.0; 5.0 |] "export_histogram" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 2.0; 9.0 ];
  r

let prometheus_roundtrip () =
  let snapshot = Metrics.snapshot (populated_registry ()) in
  let text = Obs.Prometheus.render snapshot in
  Alcotest.(check bool) "mentions TYPE" true
    (contains_substring text "# TYPE export_total counter");
  match Obs.Prometheus.parse text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok parsed -> Alcotest.(check bool) "snapshot survives" true (parsed = snapshot)

let table_render () =
  let table = Obs.Export.render_table (Metrics.snapshot (populated_registry ())) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains_substring table needle))
    [ "export_total"; "export_gauge"; "export_histogram"; "k=v" ]

let file_roundtrip () =
  let snapshot = Metrics.snapshot (populated_registry ()) in
  let path = Filename.temp_file "p2pindex_metrics" ".prom" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Export.write_metrics ~path snapshot;
      match Obs.Export.read_metrics ~path with
      | Ok parsed -> Alcotest.(check bool) "file round-trip" true (parsed = snapshot)
      | Error msg -> Alcotest.failf "read failed: %s" msg)

let json_parser_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "quote \" slash \\ control \n tab \t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Int 0 ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "JSON round-trip" true (parsed = doc)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Wiring: the network as a thin registry client. *)

let network_registry_lock_step () =
  let r = Metrics.create () in
  let net = Dht.Network.create ~metrics:r ~node_count:4 () in
  Dht.Network.send net ~dst:1 ~bytes:100 ~category:Dht.Network.Request;
  Dht.Network.send net ~dst:2 ~bytes:300 ~category:Dht.Network.Response;
  Dht.Network.touch net ~node:1;
  let snapshot = Metrics.snapshot r in
  Alcotest.(check int) "bytes mirrored" (Dht.Network.total_bytes net)
    (Metrics.counter_total snapshot "p2pindex_network_bytes_total");
  Alcotest.(check int) "messages mirrored" (Dht.Network.total_messages net)
    (Metrics.counter_total snapshot "p2pindex_network_messages_total");
  Dht.Network.reset net;
  let snapshot = Metrics.snapshot r in
  Alcotest.(check int) "reset zeroes the registry too" 0
    (Metrics.counter_total snapshot "p2pindex_network_bytes_total")

let cache_counters () =
  let r = Metrics.create () in
  let cache : int Cache.Shortcut_cache.t =
    Cache.Shortcut_cache.create ~metrics:r ~capacity:(Some 1) ()
  in
  ignore (Cache.Shortcut_cache.add cache ~query_key:"a" ~target_key:"m" (1, 10));
  ignore (Cache.Shortcut_cache.find cache ~query_key:"a");
  ignore (Cache.Shortcut_cache.find cache ~query_key:"zzz");
  ignore (Cache.Shortcut_cache.add cache ~query_key:"b" ~target_key:"m" (2, 10));
  let snapshot = Metrics.snapshot r in
  let total name = Metrics.counter_total snapshot name in
  Alcotest.(check int) "hits" 1 (total "p2pindex_cache_hits_total");
  Alcotest.(check int) "misses" 1 (total "p2pindex_cache_misses_total");
  Alcotest.(check int) "installs" 2 (total "p2pindex_cache_installs_total");
  Alcotest.(check int) "evictions" 1 (total "p2pindex_cache_evictions_total")

(* ------------------------------------------------------------------ *)
(* Wiring: a Flat-scheme simulation's registry agrees with the network
   accounting, byte for byte. *)

let flat_sim_registry_matches_network () =
  let registry = Metrics.create () in
  let tracer = Trace.create () in
  let cfg =
    {
      Sim.Runner.default_config with
      node_count = 40;
      article_count = 300;
      query_count = 500;
      scheme = Bib.Schemes.Flat;
      policy = Cache.Policy.lru 30;
      seed = 11L;
    }
  in
  let r = Sim.Runner.run ~metrics:registry ~tracer cfg in
  let total name = Metrics.counter_total r.Sim.Runner.metrics name in
  let network_bytes =
    r.Sim.Runner.request_bytes + r.Sim.Runner.response_bytes + r.Sim.Runner.cache_bytes
    + r.Sim.Runner.maintenance_bytes
  in
  Alcotest.(check int) "registry bytes = network bytes" network_bytes
    (total "p2pindex_network_bytes_total");
  Alcotest.(check int) "registry messages = network messages"
    r.Sim.Runner.network_messages
    (total "p2pindex_network_messages_total");
  (* The trace export carries the same wire-model bytes, split per span. *)
  let spans = List.concat_map (fun t -> t.Trace.spans) (Trace.traces tracer) in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 spans in
  Alcotest.(check int) "span request bytes" r.Sim.Runner.request_bytes
    (sum (fun s -> s.Trace.request_bytes));
  Alcotest.(check int) "span response bytes" r.Sim.Runner.response_bytes
    (sum (fun s -> s.Trace.response_bytes));
  Alcotest.(check int) "one trace per query" cfg.Sim.Runner.query_count
    (Trace.trace_count tracer)

(* ------------------------------------------------------------------ *)
(* Wiring: the generalization path leaves a recognizable trace. *)

let generalization_trace () =
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:5L ~node_count:20 ()) in
  let registry = Metrics.create () in
  let tracer = Trace.create () in
  let index = Bib.Bib_index.create ~resolver ~metrics:registry ~tracer () in
  let author = { Bib.Article.first = "Grace"; last = "Hopper" } in
  let article =
    Bib.Article.make ~id:1 ~authors:[ author ] ~title:"Compilers" ~conf:"ACM"
      ~year:1952 ~size_bytes:1000
  in
  let msd = Bib.Bib_query.msd article in
  Bib.Bib_index.store_file index ~msd { Storage.Block_store.name = "a1"; size_bytes = 1000 };
  ignore
    (Bib.Bib_index.insert_mapping index ~parent:(Bib.Bib_query.author_q author) ~child:msd);
  (* The query itself is not indexed; generalizing drops the year and finds
     the author entry, which specializes straight to the descriptor. *)
  let query = Bib.Bib_query.author_year author 1952 in
  Trace.begin_trace tracer ~root:(Bib.Bib_query.to_string query);
  let results = Bib.Bib_index.search_with_generalization index query in
  Trace.end_trace tracer;
  Alcotest.(check int) "found the article" 1 (List.length results);
  match Trace.traces tracer with
  | [ t ] ->
      let outcomes = List.map (fun s -> s.Trace.outcome) t.Trace.spans in
      let tail =
        match List.rev outcomes with b :: a :: _ -> [ a; b ] | short -> short
      in
      Alcotest.(check bool) "first probe missed" true
        (List.hd outcomes = Trace.Not_found);
      Alcotest.(check bool) "ends Generalized then Msd_reached" true
        (tail = [ Trace.Generalized; Trace.Msd_reached ]);
      Alcotest.(check int) "per-outcome counters agree"
        (List.length t.Trace.spans)
        (Metrics.counter_total (Metrics.snapshot registry)
           "p2pindex_index_lookup_steps_total")
  | other -> Alcotest.failf "expected one trace, got %d" (List.length other)

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "obs:metrics",
      [
        Alcotest.test_case "counter basics" `Quick counter_basics;
        Alcotest.test_case "instrument identity" `Quick counter_identity;
        Alcotest.test_case "kind and name validation" `Quick kind_mismatch_rejected;
        Alcotest.test_case "gauge basics" `Quick gauge_basics;
        Alcotest.test_case "histogram observe/quantile" `Quick histogram_observe_and_quantile;
      ]
      @ qcheck [ hist_monotone_prop; quantile_in_bounds_prop ] );
    ( "obs:trace",
      [
        Alcotest.test_case "span ordering" `Quick trace_span_ordering;
        Alcotest.test_case "ring buffer drops oldest" `Quick trace_ring_buffer;
        Alcotest.test_case "JSONL round-trip" `Quick jsonl_roundtrip;
      ]
      @ qcheck [ span_json_roundtrip_prop ] );
    ( "obs:export",
      [
        Alcotest.test_case "prometheus round-trip" `Quick prometheus_roundtrip;
        Alcotest.test_case "table render" `Quick table_render;
        Alcotest.test_case "file round-trip" `Quick file_roundtrip;
        Alcotest.test_case "json parser round-trip" `Quick json_parser_roundtrip;
      ] );
    ( "obs:wiring",
      [
        Alcotest.test_case "network mirrors registry" `Quick network_registry_lock_step;
        Alcotest.test_case "cache counters" `Quick cache_counters;
        Alcotest.test_case "flat sim registry = network accounting" `Quick
          flat_sim_registry_matches_network;
        Alcotest.test_case "generalization path trace" `Quick generalization_trace;
      ] );
  ]

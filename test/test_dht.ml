(* DHT substrate tests: the network accounting layer, the static resolver,
   and the Chord protocol (routing, joins, stabilization, failures). *)

module Key = Hashing.Key
module Network = Dht.Network
module Static = Dht.Static_dht
module Chord = Dht.Chord
module Pastry = Dht.Pastry

let network_accounting () =
  let net = Network.create ~node_count:4 () in
  Network.send net ~dst:0 ~bytes:100 ~category:Network.Request;
  Network.send net ~dst:1 ~bytes:250 ~category:Network.Response;
  Network.send net ~dst:1 ~bytes:50 ~category:Network.Cache_update;
  Network.touch net ~node:1;
  Network.touch net ~node:1;
  Network.touch net ~node:3;
  Alcotest.(check int) "request messages" 1 (Network.messages net Network.Request);
  Alcotest.(check int) "response bytes" 250 (Network.bytes net Network.Response);
  Alcotest.(check int) "total bytes" 400 (Network.total_bytes net);
  Alcotest.(check int) "total messages" 3 (Network.total_messages net);
  Alcotest.(check (array int)) "touches" [| 0; 2; 0; 1 |] (Network.touches net);
  Network.reset net;
  Alcotest.(check int) "reset clears bytes" 0 (Network.total_bytes net);
  Alcotest.(check (array int)) "reset clears touches" [| 0; 0; 0; 0 |] (Network.touches net)

let network_bad_destination () =
  let net = Network.create ~node_count:2 () in
  Alcotest.check_raises "destination checked"
    (Invalid_argument "Network.send: node 5 out of range [0, 2)") (fun () ->
      Network.send net ~dst:5 ~bytes:1 ~category:Network.Request);
  Alcotest.check_raises "negative bytes rejected"
    (Invalid_argument "Network.send: negative byte count -7") (fun () ->
      Network.send net ~dst:0 ~bytes:(-7) ~category:Network.Request);
  Alcotest.check_raises "touch checked"
    (Invalid_argument "Network.touch: node -1 out of range [0, 2)") (fun () ->
      Network.touch net ~node:(-1))

let static_ownership_brute_force () =
  let dht = Static.create ~seed:7L ~node_count:50 () in
  let keys = Array.init 50 (Static.node_key dht) in
  let brute key =
    (* The owner is the node minimizing the clockwise distance from the key. *)
    let best = ref 0 in
    for i = 1 to 49 do
      if
        Key.to_float (Key.distance_cw key keys.(i))
        < Key.to_float (Key.distance_cw key keys.(!best))
      then best := i
    done;
    !best
  in
  let g = Stdx.Prng.create ~seed:13L in
  for _ = 1 to 200 do
    let key = Key.random g in
    Alcotest.(check int)
      (Printf.sprintf "owner of %s" (Key.short_hex key))
      (brute key) (Static.responsible dht key)
  done

let static_node_key_is_own_owner () =
  let dht = Static.create ~seed:3L ~node_count:20 () in
  for i = 0 to 19 do
    Alcotest.(check int) "a node owns its own identifier" i
      (Static.responsible dht (Static.node_key dht i))
  done

let static_rejects_duplicates () =
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Static_dht.of_keys: duplicate node identifier") (fun () ->
      ignore (Static.of_keys [| Key.of_int 1; Key.of_int 1 |]))

let static_single_node_owns_all () =
  let dht = Static.of_keys [| Key.of_int 42 |] in
  let g = Stdx.Prng.create ~seed:1L in
  for _ = 1 to 20 do
    Alcotest.(check int) "single node owns everything" 0
      (Static.responsible dht (Key.random g))
  done

let chord_network_converged () =
  let ring = Chord.create_network ~seed:11L ~node_count:64 () in
  Alcotest.(check int) "64 live nodes" 64 (Chord.live_count ring);
  Alcotest.(check bool) "bootstrap network is converged" true (Chord.is_converged ring)

let chord_lookup_matches_oracle () =
  let ring = Chord.create_network ~seed:5L ~node_count:100 () in
  let g = Stdx.Prng.create ~seed:21L in
  for _ = 1 to 300 do
    let key = Key.random g in
    let owner, _hops = Chord.lookup ring key in
    Alcotest.(check string)
      (Printf.sprintf "lookup %s" (Key.short_hex key))
      (Key.to_hex (Chord.responsible_oracle ring key))
      (Key.to_hex owner)
  done

let chord_lookup_hops_logarithmic () =
  let ring = Chord.create_network ~seed:5L ~node_count:256 () in
  let g = Stdx.Prng.create ~seed:22L in
  let summary = Stdx.Stats.Summary.create () in
  for _ = 1 to 500 do
    let key = Key.random g in
    let _owner, hops = Chord.lookup ring key in
    Stdx.Stats.Summary.add_int summary hops
  done;
  let mean = Stdx.Stats.Summary.mean summary in
  (* Chord promises ~(1/2) log2 N hops on average; allow generous slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean hops %.2f within [1.5, 8] for N=256" mean)
    true
    (mean >= 1.5 && mean <= 8.0);
  Alcotest.(check bool) "max hops bounded by 2 log2 N" true
    (Stdx.Stats.Summary.max summary <= 16.0)

let chord_lookup_from_every_node () =
  let ring = Chord.create_network ~seed:9L ~node_count:40 () in
  let g = Stdx.Prng.create ~seed:33L in
  let key = Key.random g in
  let expected = Chord.responsible_oracle ring key in
  List.iter
    (fun from ->
      let owner, _ = Chord.lookup ring ~from key in
      Alcotest.(check string)
        (Printf.sprintf "from %s" (Key.short_hex from))
        (Key.to_hex expected) (Key.to_hex owner))
    (Chord.live_keys ring)

let chord_incremental_join_converges () =
  let ring = Chord.create ~seed:17L () in
  (* Join 24 nodes one at a time, stabilizing a little between joins, as a
     real deployment would. *)
  for _ = 1 to 24 do
    ignore (Chord.join ring);
    Chord.stabilize ring ~rounds:2
  done;
  Chord.stabilize ring ~rounds:8;
  Alcotest.(check int) "24 nodes" 24 (Chord.live_count ring);
  Alcotest.(check bool) "stabilization converges" true (Chord.is_converged ring)

let chord_join_explicit_key () =
  let ring = Chord.create ~seed:1L () in
  Chord.join_with_key ring (Key.of_int 100);
  Chord.join_with_key ring (Key.of_int 200);
  Chord.join_with_key ring (Key.of_int 300);
  Chord.stabilize ring ~rounds:6;
  Alcotest.(check bool) "converged" true (Chord.is_converged ring);
  (* Key 150 belongs to node 200; key 350 wraps to node 100. *)
  let owner, _ = Chord.lookup ring (Key.of_int 150) in
  Alcotest.(check string) "owner of 150" (Key.to_hex (Key.of_int 200)) (Key.to_hex owner);
  let owner, _ = Chord.lookup ring (Key.of_int 350) in
  Alcotest.(check string) "owner of 350 wraps" (Key.to_hex (Key.of_int 100))
    (Key.to_hex owner)

let chord_duplicate_join_rejected () =
  let ring = Chord.create ~seed:1L () in
  Chord.join_with_key ring (Key.of_int 5);
  Alcotest.check_raises "duplicate join"
    (Invalid_argument "Chord.join_with_key: identifier already joined") (fun () ->
      Chord.join_with_key ring (Key.of_int 5))

let chord_failure_recovery () =
  let ring = Chord.create_network ~seed:29L ~node_count:50 () in
  let keys = Chord.live_keys ring in
  (* Abruptly fail 10 nodes, then let stabilization repair the ring. *)
  let victims = List.filteri (fun i _ -> i mod 5 = 0) keys in
  List.iter (Chord.leave ring) victims;
  Alcotest.(check int) "40 nodes remain" 40 (Chord.live_count ring);
  Chord.stabilize ring ~rounds:6;
  Alcotest.(check bool) "repaired after churn" true (Chord.is_converged ring);
  let g = Stdx.Prng.create ~seed:31L in
  for _ = 1 to 100 do
    let key = Key.random g in
    let owner, _ = Chord.lookup ring key in
    Alcotest.(check string) "post-churn lookup correct"
      (Key.to_hex (Chord.responsible_oracle ring key))
      (Key.to_hex owner)
  done

let chord_leave_unknown_raises () =
  let ring = Chord.create_network ~seed:2L ~node_count:3 () in
  Alcotest.check_raises "unknown node" Not_found (fun () ->
      Chord.leave ring (Key.of_int 424242))

let chord_single_node_ring () =
  let ring = Chord.create ~seed:3L () in
  Chord.join_with_key ring (Key.of_int 77);
  let owner, hops = Chord.lookup ring (Key.of_int 123456) in
  Alcotest.(check string) "sole node owns all" (Key.to_hex (Key.of_int 77))
    (Key.to_hex owner);
  Alcotest.(check bool) "lookup terminates quickly" true (hops <= 2);
  Alcotest.(check bool) "single node converged" true (Chord.is_converged ring)

let chord_resolver_agrees_with_static () =
  (* A converged Chord ring and a static DHT over the same node identifiers
     must assign every key to the same node. *)
  let ring = Chord.create_network ~seed:41L ~node_count:30 () in
  let keys = Array.of_list (Chord.live_keys ring) in
  let static = Static.of_keys keys in
  let chord_resolver = Chord.resolver ring in
  let g = Stdx.Prng.create ~seed:43L in
  for _ = 1 to 200 do
    let key = Key.random g in
    Alcotest.(check int) "same ownership"
      (Static.responsible static key)
      (Dht.Resolver.responsible chord_resolver key)
  done

let arbitrary_node_count = QCheck.make ~print:string_of_int (QCheck.Gen.int_range 1 60)

let chord_always_converges_after_bootstrap =
  QCheck.Test.make ~name:"create_network always converged" ~count:20 arbitrary_node_count
    (fun n ->
      let ring = Chord.create_network ~seed:(Int64.of_int (n + 1)) ~node_count:n () in
      Chord.is_converged ring)

(* ------------------------------------------------------------------ *)
(* Pastry. *)

let key_nibbles () =
  let k = Key.of_hex "a0f3000000000000000000000000000000000000" in
  Alcotest.(check int) "nibble 0" 0xA (Key.nibble k 0);
  Alcotest.(check int) "nibble 1" 0x0 (Key.nibble k 1);
  Alcotest.(check int) "nibble 2" 0xF (Key.nibble k 2);
  Alcotest.(check int) "nibble 3" 0x3 (Key.nibble k 3);
  Alcotest.check_raises "nibble bounds" (Invalid_argument "Key.nibble: index out of range")
    (fun () -> ignore (Key.nibble k 40))

let pastry_network_converged () =
  let net = Pastry.create_network ~seed:3L ~node_count:80 () in
  Alcotest.(check int) "80 nodes" 80 (Pastry.live_count net);
  Alcotest.(check bool) "converged" true (Pastry.is_converged net)

let pastry_lookup_matches_oracle () =
  let net = Pastry.create_network ~seed:5L ~node_count:120 () in
  let g = Stdx.Prng.create ~seed:7L in
  for _ = 1 to 300 do
    let key = Key.random g in
    let owner, _hops = Pastry.lookup net key in
    Alcotest.(check string)
      (Printf.sprintf "lookup %s" (Key.short_hex key))
      (Key.to_hex (Pastry.responsible_oracle net key))
      (Key.to_hex owner)
  done

let pastry_hops_logarithmic () =
  let net = Pastry.create_network ~seed:11L ~node_count:256 () in
  let g = Stdx.Prng.create ~seed:13L in
  let summary = Stdx.Stats.Summary.create () in
  for _ = 1 to 400 do
    let _owner, hops = Pastry.lookup net (Key.random g) in
    Stdx.Stats.Summary.add_int summary hops
  done;
  let mean = Stdx.Stats.Summary.mean summary in
  (* log16(256) = 2 digits plus a couple of leaf-set hops. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean hops %.2f within [1.5, 6]" mean)
    true
    (mean >= 1.5 && mean <= 6.0)

let pastry_lookup_from_every_node () =
  let net = Pastry.create_network ~seed:17L ~node_count:50 () in
  let g = Stdx.Prng.create ~seed:19L in
  let key = Key.random g in
  let expected = Pastry.responsible_oracle net key in
  List.iter
    (fun from ->
      let owner, _ = Pastry.lookup net ~from key in
      Alcotest.(check string)
        (Printf.sprintf "from %s" (Key.short_hex from))
        (Key.to_hex expected) (Key.to_hex owner))
    (Pastry.live_keys net)

let pastry_joins_converge () =
  let net = Pastry.create_network ~seed:23L ~node_count:30 () in
  for _ = 1 to 20 do
    ignore (Pastry.join net)
  done;
  Pastry.repair net;
  Alcotest.(check int) "50 nodes" 50 (Pastry.live_count net);
  Alcotest.(check bool) "joined network converged" true (Pastry.is_converged net)

let pastry_failure_recovery () =
  let net = Pastry.create_network ~seed:29L ~node_count:60 () in
  let victims = List.filteri (fun i _ -> i mod 5 = 0) (Pastry.live_keys net) in
  List.iter (Pastry.leave net) victims;
  Pastry.repair net;
  Pastry.repair net;
  Pastry.repair net;
  Alcotest.(check int) "48 nodes remain" 48 (Pastry.live_count net);
  Alcotest.(check bool) "repaired after churn" true (Pastry.is_converged net)

let pastry_single_node () =
  let net = Pastry.create ~seed:1L () in
  Pastry.join_with_key net (Key.of_int 5);
  let owner, hops = Pastry.lookup net (Key.of_int 999) in
  Alcotest.(check string) "sole node owns all" (Key.to_hex (Key.of_int 5)) (Key.to_hex owner);
  Alcotest.(check bool) "fast" true (hops <= 2)

let pastry_duplicate_join_rejected () =
  let net = Pastry.create ~seed:1L () in
  Pastry.join_with_key net (Key.of_int 5);
  Alcotest.check_raises "duplicate join"
    (Invalid_argument "Pastry.join_with_key: identifier already joined") (fun () ->
      Pastry.join_with_key net (Key.of_int 5))

let pastry_resolver_numerically_closest () =
  (* Pastry's ownership rule differs from Chord's: the numerically closest
     node, not the clockwise successor. *)
  let net = Pastry.create_network ~seed:31L ~node_count:40 () in
  let resolver = Pastry.resolver net in
  let keys = Array.of_list (Pastry.live_keys net) in
  let g = Stdx.Prng.create ~seed:37L in
  for _ = 1 to 200 do
    let key = Key.random g in
    let owner = keys.(Dht.Resolver.responsible resolver key) in
    Alcotest.(check string) "resolver matches oracle"
      (Key.to_hex (Pastry.responsible_oracle net key))
      (Key.to_hex owner)
  done

(* ------------------------------------------------------------------ *)
(* CAN. *)

module Can = Dht.Can

let can_well_formed_after_joins () =
  let net = Can.create_network ~seed:3L ~dimensions:2 ~node_count:60 () in
  Alcotest.(check int) "60 nodes" 60 (Can.node_count net);
  Alcotest.(check bool) "zones tile the space" true (Can.is_well_formed net)

let can_lookup_matches_owner () =
  let net = Can.create_network ~seed:5L ~dimensions:2 ~node_count:80 () in
  let g = Stdx.Prng.create ~seed:7L in
  for _ = 1 to 200 do
    let key = Key.random g in
    let owner, _hops = Can.lookup net key in
    Alcotest.(check int) "greedy routing reaches the owner"
      (Can.owner_of_point net (Can.point_of_key net key))
      owner
  done

let can_hops_scale_with_dimension () =
  (* O(d/4 * n^(1/d)): higher dimensions shorten routes. *)
  let mean_hops dims =
    let net = Can.create_network ~seed:11L ~dimensions:dims ~node_count:128 () in
    let g = Stdx.Prng.create ~seed:13L in
    let summary = Stdx.Stats.Summary.create () in
    for _ = 1 to 200 do
      let _owner, hops = Can.lookup net (Key.random g) in
      Stdx.Stats.Summary.add_int summary hops
    done;
    Stdx.Stats.Summary.mean summary
  in
  let d2 = mean_hops 2 and d4 = mean_hops 4 in
  Alcotest.(check bool)
    (Printf.sprintf "2-d %.1f hops > 4-d %.1f hops" d2 d4)
    true (d2 > d4);
  Alcotest.(check bool) "2-d mean in a sane band" true (d2 >= 2.0 && d2 <= 12.0)

let can_departures_keep_tiling () =
  let net = Can.create_network ~seed:17L ~dimensions:2 ~node_count:50 () in
  List.iter (fun id -> Can.leave net id) (List.filteri (fun i _ -> i mod 3 = 0) (List.init 50 Fun.id));
  Alcotest.(check bool) "still well-formed" true (Can.is_well_formed net);
  let g = Stdx.Prng.create ~seed:19L in
  for _ = 1 to 100 do
    let key = Key.random g in
    let owner, _ = Can.lookup net key in
    Alcotest.(check int) "post-departure routing correct"
      (Can.owner_of_point net (Can.point_of_key net key))
      owner
  done

let can_point_of_key_deterministic () =
  let net = Can.create ~seed:1L ~dimensions:3 () in
  let key = Key.of_string "some key" in
  let p = Can.point_of_key net key in
  Alcotest.(check int) "three coordinates" 3 (Array.length p);
  Array.iter
    (fun x -> Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0))
    p;
  Alcotest.(check bool) "deterministic" true (Can.point_of_key net key = p)

let can_last_node_protected () =
  let net = Can.create_network ~seed:23L ~node_count:1 () in
  Alcotest.check_raises "cannot empty the space"
    (Invalid_argument "Can.leave: cannot remove the last node") (fun () -> Can.leave net 0)

let can_always_well_formed =
  QCheck.Test.make ~name:"CAN joins and leaves keep the tiling" ~count:20
    (QCheck.pair (QCheck.int_range 2 40) (QCheck.int_range 0 10))
    (fun (joins, leaves) ->
      let net = Can.create_network ~seed:(Int64.of_int (joins + 1)) ~node_count:joins () in
      let leaves = Stdlib.min leaves (joins - 1) in
      for id = 0 to leaves - 1 do
        Can.leave net id
      done;
      Can.is_well_formed net)

let pastry_always_converges_after_bootstrap =
  QCheck.Test.make ~name:"pastry create_network always converged" ~count:15
    arbitrary_node_count (fun n ->
      let net = Pastry.create_network ~seed:(Int64.of_int (n + 3)) ~node_count:n () in
      Pastry.is_converged net)

let chord_stabilize_idempotent_on_converged () =
  let ring = Chord.create_network ~seed:47L ~node_count:32 () in
  Alcotest.(check bool) "converged before" true (Chord.is_converged ring);
  Chord.stabilize ring ~rounds:3;
  Alcotest.(check bool) "still converged after extra rounds" true (Chord.is_converged ring)

let chord_live_keys_sorted () =
  let ring = Chord.create_network ~seed:53L ~node_count:20 () in
  let keys = Chord.live_keys ring in
  let sorted = List.sort Key.compare keys in
  Alcotest.(check bool) "ring order" true (List.equal Key.equal keys sorted)

(* ------------------------------------------------------------------ *)
(* Kademlia. *)

module Kademlia = Dht.Kademlia

let kademlia_xor_metric () =
  let a = Key.of_int 0b1100 and b = Key.of_int 0b1010 in
  Alcotest.(check string) "xor" (Key.to_hex (Key.of_int 0b0110))
    (Key.to_hex (Kademlia.xor_distance a b));
  (* Metric laws: identity, symmetry. *)
  Alcotest.(check string) "d(a,a) = 0" (Key.to_hex Key.zero)
    (Key.to_hex (Kademlia.xor_distance a a));
  Alcotest.(check string) "symmetric"
    (Key.to_hex (Kademlia.xor_distance a b))
    (Key.to_hex (Kademlia.xor_distance b a))

let kademlia_network_converged () =
  let net = Kademlia.create_network ~seed:3L ~node_count:60 () in
  Alcotest.(check int) "60 nodes" 60 (Kademlia.live_count net);
  Alcotest.(check bool) "converged" true (Kademlia.is_converged net)

let kademlia_lookup_matches_oracle () =
  let net = Kademlia.create_network ~seed:5L ~node_count:80 () in
  let g = Stdx.Prng.create ~seed:7L in
  for _ = 1 to 200 do
    let key = Key.random g in
    let owner, _contacted = Kademlia.lookup net key in
    Alcotest.(check string)
      (Printf.sprintf "lookup %s" (Key.short_hex key))
      (Key.to_hex (Kademlia.responsible_oracle net key))
      (Key.to_hex owner)
  done

let kademlia_lookup_cost_bounded () =
  let net = Kademlia.create_network ~seed:11L ~node_count:128 () in
  let g = Stdx.Prng.create ~seed:13L in
  let summary = Stdx.Stats.Summary.create () in
  for _ = 1 to 200 do
    let _owner, contacted = Kademlia.lookup net (Key.random g) in
    Stdx.Stats.Summary.add_int summary contacted
  done;
  (* Iterative lookups contact O(k + alpha log n) nodes, far below n. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean contacted %.1f << 128" (Stdx.Stats.Summary.mean summary))
    true
    (Stdx.Stats.Summary.mean summary < 30.0)

let kademlia_churn_recovery () =
  let net = Kademlia.create_network ~seed:17L ~node_count:60 () in
  let victims = List.filteri (fun i _ -> i mod 4 = 0) (Kademlia.live_keys net) in
  List.iter (Kademlia.leave net) victims;
  Kademlia.refresh net;
  Alcotest.(check int) "45 nodes remain" 45 (Kademlia.live_count net);
  Alcotest.(check bool) "converged after churn" true (Kademlia.is_converged net)

let kademlia_duplicate_join_rejected () =
  let net = Kademlia.create ~seed:1L () in
  Kademlia.join_with_key net (Key.of_int 5);
  Alcotest.check_raises "duplicate join"
    (Invalid_argument "Kademlia.join_with_key: identifier already joined") (fun () ->
      Kademlia.join_with_key net (Key.of_int 5))

let kademlia_resolver_replicas_xor_closest () =
  let net = Kademlia.create_network ~seed:19L ~node_count:30 () in
  let resolver = Kademlia.resolver net in
  let keys = Array.of_list (Kademlia.live_keys net) in
  let g = Stdx.Prng.create ~seed:23L in
  for _ = 1 to 50 do
    let key = Key.random g in
    match Dht.Resolver.replicas resolver key 3 with
    | (primary :: _ as replicas) ->
        Alcotest.(check int) "three distinct replicas" 3
          (List.length (List.sort_uniq Int.compare replicas));
        Alcotest.(check string) "primary is the XOR-closest"
          (Key.to_hex (Kademlia.responsible_oracle net key))
          (Key.to_hex keys.(primary))
    | [] -> Alcotest.fail "no replicas"
  done

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "dht:network",
      [
        Alcotest.test_case "traffic accounting" `Quick network_accounting;
        Alcotest.test_case "bad destination rejected" `Quick network_bad_destination;
      ] );
    ( "dht:static",
      [
        Alcotest.test_case "ownership matches brute force" `Quick
          static_ownership_brute_force;
        Alcotest.test_case "node owns own identifier" `Quick static_node_key_is_own_owner;
        Alcotest.test_case "duplicates rejected" `Quick static_rejects_duplicates;
        Alcotest.test_case "single-node ring" `Quick static_single_node_owns_all;
      ] );
    ( "dht:chord",
      [
        Alcotest.test_case "bootstrap converged" `Quick chord_network_converged;
        Alcotest.test_case "lookup matches oracle" `Quick chord_lookup_matches_oracle;
        Alcotest.test_case "hops are logarithmic" `Quick chord_lookup_hops_logarithmic;
        Alcotest.test_case "lookup from every node" `Quick chord_lookup_from_every_node;
        Alcotest.test_case "incremental joins converge" `Slow
          chord_incremental_join_converges;
        Alcotest.test_case "explicit keys" `Quick chord_join_explicit_key;
        Alcotest.test_case "duplicate join rejected" `Quick chord_duplicate_join_rejected;
        Alcotest.test_case "failure recovery" `Slow chord_failure_recovery;
        Alcotest.test_case "leave unknown raises" `Quick chord_leave_unknown_raises;
        Alcotest.test_case "single-node ring" `Quick chord_single_node_ring;
        Alcotest.test_case "resolver agrees with static" `Quick
          chord_resolver_agrees_with_static;
        Alcotest.test_case "stabilize idempotent when converged" `Quick
          chord_stabilize_idempotent_on_converged;
        Alcotest.test_case "live keys in ring order" `Quick chord_live_keys_sorted;
      ]
      @ qcheck [ chord_always_converges_after_bootstrap ] );
    ( "dht:pastry",
      [
        Alcotest.test_case "key nibbles" `Quick key_nibbles;
        Alcotest.test_case "bootstrap converged" `Quick pastry_network_converged;
        Alcotest.test_case "lookup matches oracle" `Quick pastry_lookup_matches_oracle;
        Alcotest.test_case "hops are logarithmic" `Quick pastry_hops_logarithmic;
        Alcotest.test_case "lookup from every node" `Quick pastry_lookup_from_every_node;
        Alcotest.test_case "joins converge" `Slow pastry_joins_converge;
        Alcotest.test_case "failure recovery" `Slow pastry_failure_recovery;
        Alcotest.test_case "single node" `Quick pastry_single_node;
        Alcotest.test_case "duplicate join rejected" `Quick pastry_duplicate_join_rejected;
        Alcotest.test_case "resolver numerically closest" `Quick
          pastry_resolver_numerically_closest;
      ]
      @ qcheck [ pastry_always_converges_after_bootstrap ] );
    ( "dht:can",
      [
        Alcotest.test_case "zones tile after joins" `Quick can_well_formed_after_joins;
        Alcotest.test_case "lookup matches owner" `Quick can_lookup_matches_owner;
        Alcotest.test_case "hops scale with dimension" `Quick can_hops_scale_with_dimension;
        Alcotest.test_case "departures keep the tiling" `Quick can_departures_keep_tiling;
        Alcotest.test_case "point mapping deterministic" `Quick can_point_of_key_deterministic;
        Alcotest.test_case "last node protected" `Quick can_last_node_protected;
      ]
      @ qcheck [ can_always_well_formed ] );
    ( "dht:kademlia",
      [
        Alcotest.test_case "xor metric" `Quick kademlia_xor_metric;
        Alcotest.test_case "bootstrap converged" `Slow kademlia_network_converged;
        Alcotest.test_case "lookup matches oracle" `Quick kademlia_lookup_matches_oracle;
        Alcotest.test_case "lookup cost bounded" `Quick kademlia_lookup_cost_bounded;
        Alcotest.test_case "churn recovery" `Slow kademlia_churn_recovery;
        Alcotest.test_case "duplicate join rejected" `Quick kademlia_duplicate_join_rejected;
        Alcotest.test_case "resolver XOR replicas" `Quick kademlia_resolver_replicas_xor_closest;
      ] );
  ]

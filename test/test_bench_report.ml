(* The perf-observability layer: structured bench reports, the phase
   profiler, and the benchdiff comparison engine behind the CI gate. *)

module Report = Obs.Bench_report
module Diff = Obs.Bench_diff
module Phase = Obs.Phase

let scale =
  { Report.node_count = 100; article_count = 1_000; query_count = 5_000; seed = 42L }

let sample_report ?(label = "sample") ?(timed = false) () =
  let time_ns_per_run = if timed then Some 812.5 else None in
  let wall_ns = if timed then Some 123_456_789L else None in
  {
    Report.label;
    timed;
    scale;
    micro =
      [
        {
          Report.micro_name = "sha1/256B";
          runs = 1_000;
          time_ns_per_run;
          minor_words_per_run = 1_834.5;
          promoted_words_per_run = 14.25;
          major_words_per_run = 15.0;
        };
        {
          Report.micro_name = "xpath/covers";
          runs = 1_000;
          time_ns_per_run = None;
          minor_words_per_run = 0.0;
          promoted_words_per_run = 0.0;
          major_words_per_run = 0.0;
        };
      ];
    experiments =
      [
        {
          Report.exp_id = "table1";
          wall_ns;
          gc =
            {
              Report.minor_words = 1.5e7;
              promoted_words = 2.5e5;
              major_words = 3.0e5;
              minor_collections = 57;
              major_collections = 3;
            };
          exp_metrics =
            [
              Report.metric "errors/simple/no_cache" Report.Lower_better 250.0;
              Report.metric "hit_ratio/simple/lru30" Report.Higher_better 0.62;
              Report.metric "gini/no_cache" Report.Informational 0.83;
            ];
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Schema round-trip and determinism. *)

let roundtrip () =
  List.iter
    (fun timed ->
      let t = sample_report ~timed () in
      let text = Report.to_string t in
      match Report.of_string text with
      | Error msg -> Alcotest.failf "parse failed: %s" msg
      | Ok back ->
          (* The canonical byte form is the equality we care about: if the
             re-serialization matches, every field survived. *)
          Alcotest.(check string)
            (Printf.sprintf "canonical bytes (timed=%b)" timed)
            text (Report.to_string back))
    [ false; true ]

let serialization_deterministic () =
  let a = Report.to_string (sample_report ()) in
  let b = Report.to_string (sample_report ()) in
  Alcotest.(check string) "equal values, equal bytes" a b;
  (* Strict mode keeps every wall-clock field null. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "no timing bytes in strict mode" true
    (contains a "\"time_ns_per_run\":null" && contains a "\"wall_ns\":null")

let schema_guard () =
  let reject label text =
    match Report.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  reject "wrong schema" {|{"schema":"other.thing","version":1}|};
  reject "future version"
    {|{"schema":"p2pindex.bench_report","version":99,"label":"x","timed":false,"scale":{"node_count":1,"article_count":1,"query_count":1,"seed":"1"},"micro":[],"experiments":[]}|};
  reject "missing field" {|{"schema":"p2pindex.bench_report","version":1}|};
  reject "not json" "nonsense {"

let label_of_path () =
  Alcotest.(check string) "BENCH_ prefix stripped" "smoke"
    (Report.label_of_path "/ci/artifacts/BENCH_smoke.json");
  Alcotest.(check string) "plain name kept" "other"
    (Report.label_of_path "other.json")

let flatten_view () =
  let flat = Report.flatten (sample_report ()) in
  let names = List.map (fun (m : Report.metric) -> m.Report.name) flat in
  Alcotest.(check bool) "sorted" true
    (List.sort String.compare names = names);
  Alcotest.(check bool) "micro namespaced" true
    (List.mem "micro/sha1/256B/minor_words_per_run" names);
  Alcotest.(check bool) "experiment namespaced" true
    (List.mem "exp/table1/errors/simple/no_cache" names);
  Alcotest.(check bool) "gc namespaced" true
    (List.mem "exp/table1/gc/minor_collections" names);
  (* Strict mode: no timing metrics exist to compare. *)
  Alcotest.(check bool) "no wall metrics untimed" true
    (not (List.exists (fun n -> n = "exp/table1/wall_ns") names));
  let timed_names =
    List.map
      (fun (m : Report.metric) -> m.Report.name)
      (Report.flatten (sample_report ~timed:true ()))
  in
  Alcotest.(check bool) "wall metrics appear when timed" true
    (List.mem "exp/table1/wall_ns" timed_names
    && List.mem "micro/sha1/256B/time_ns_per_run" timed_names)

(* ------------------------------------------------------------------ *)
(* benchdiff verdicts, driven through real fixture files. *)

let with_fixture report f =
  let path = Filename.temp_file "bench_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.write ~path report;
      match Report.read ~path with
      | Error msg -> Alcotest.failf "fixture unreadable: %s" msg
      | Ok loaded -> f loaded)

let scale_metric current_of report =
  (* Build a variant of [report] with table1's metric values rewritten. *)
  {
    report with
    Report.experiments =
      List.map
        (fun (e : Report.experiment) ->
          {
            e with
            Report.exp_metrics =
              List.map
                (fun (m : Report.metric) ->
                  { m with Report.value = current_of m })
                e.Report.exp_metrics;
          })
        report.Report.experiments;
  }

let find_row result name =
  match
    List.find_opt (fun (r : Diff.row) -> String.equal r.Diff.name name) result.Diff.rows
  with
  | Some row -> row
  | None -> Alcotest.failf "row %s not found" name

let verdicts () =
  let baseline = sample_report () in
  (* errors (lower-better) +10%: regression; hit_ratio (higher-better)
     +10%: improvement; gini informational: within regardless. *)
  let current =
    scale_metric
      (fun (m : Report.metric) -> m.Report.value *. 1.10)
      baseline
  in
  with_fixture baseline (fun baseline ->
      with_fixture current (fun current ->
          match Diff.compare_reports ~baseline current with
          | Error msg -> Alcotest.failf "diff failed: %s" msg
          | Ok result ->
              let verdict name =
                (find_row result name).Diff.verdict
              in
              Alcotest.(check bool) "lower-better rise regresses" true
                (verdict "exp/table1/errors/simple/no_cache" = Diff.Regression);
              Alcotest.(check bool) "higher-better rise improves" true
                (verdict "exp/table1/hit_ratio/simple/lru30" = Diff.Improvement);
              Alcotest.(check bool) "informational never fires" true
                (verdict "exp/table1/gini/no_cache" = Diff.Within);
              Alcotest.(check bool) "gate fails" false (Diff.ok result);
              Alcotest.(check bool) "render says FAIL" true
                (let s = Diff.render result in
                 String.length s >= 5
                 && String.sub s (String.length s - 5) 4 = "FAIL")))

let within_and_identical () =
  let baseline = sample_report () in
  with_fixture baseline (fun baseline ->
      with_fixture (sample_report ()) (fun current ->
          match Diff.compare_reports ~baseline current with
          | Error msg -> Alcotest.failf "diff failed: %s" msg
          | Ok result ->
              Alcotest.(check bool) "identical reports pass" true (Diff.ok result);
              Alcotest.(check int) "no regressions" 0 result.Diff.regressions;
              Alcotest.(check int) "no missing" 0 result.Diff.missing);
      (* GC metrics get the loose 35% band: +20% stays within. *)
      let drifted =
        {
          baseline with
          Report.experiments =
            List.map
              (fun (e : Report.experiment) ->
                {
                  e with
                  Report.gc =
                    {
                      e.Report.gc with
                      Report.minor_words = e.Report.gc.Report.minor_words *. 1.2;
                    };
                })
              baseline.Report.experiments;
        }
      in
      match Diff.compare_reports ~baseline drifted with
      | Error msg -> Alcotest.failf "diff failed: %s" msg
      | Ok result ->
          Alcotest.(check bool) "alloc drift inside band" true (Diff.ok result))

let missing_and_added () =
  let baseline = sample_report () in
  let current =
    {
      (sample_report ()) with
      Report.micro = [];
      experiments =
        List.map
          (fun (e : Report.experiment) ->
            {
              e with
              Report.exp_metrics =
                Report.metric "brand_new" Report.Lower_better 1.0 :: e.Report.exp_metrics;
            })
          baseline.Report.experiments;
    }
  in
  match Diff.compare_reports ~baseline current with
  | Error msg -> Alcotest.failf "diff failed: %s" msg
  | Ok result ->
      Alcotest.(check bool) "lost micro coverage fails the gate" false (Diff.ok result);
      Alcotest.(check bool) "missing counted" true (result.Diff.missing > 0);
      Alcotest.(check bool) "added never fails" true
        ((find_row result "exp/table1/brand_new").Diff.verdict = Diff.Added);
      (* A gate that can be passed by deleting metrics is no gate; an
         all-Added current alone must not fail. *)
      Alcotest.(check int) "added count" 1 result.Diff.added

let scale_mismatch () =
  let baseline = sample_report () in
  let other =
    { (sample_report ()) with Report.scale = { scale with Report.node_count = 500 } }
  in
  match Diff.compare_reports ~baseline other with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "different scales must not compare"

let zero_baseline_regresses () =
  (* An error count of 0 regresses the moment it moves at all. *)
  let baseline =
    scale_metric (fun _ -> 0.0) (sample_report ())
  in
  let current =
    scale_metric
      (fun (m : Report.metric) ->
        if m.Report.better = Report.Lower_better then 1.0 else 0.0)
      baseline
  in
  match Diff.compare_reports ~baseline current with
  | Error msg -> Alcotest.failf "diff failed: %s" msg
  | Ok result ->
      Alcotest.(check bool) "0 -> 1 is a regression" true
        ((find_row result "exp/table1/errors/simple/no_cache").Diff.verdict
        = Diff.Regression)

let threshold_override () =
  let baseline = sample_report () in
  let current =
    scale_metric (fun (m : Report.metric) -> m.Report.value *. 1.10) baseline
  in
  match
    Diff.compare_reports ~threshold_for:(fun _ -> 0.5) ~baseline current
  with
  | Error msg -> Alcotest.failf "diff failed: %s" msg
  | Ok result -> Alcotest.(check bool) "50% band swallows +10%" true (Diff.ok result)

(* ------------------------------------------------------------------ *)
(* Phase profiler. *)

let fake_clock () =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t 10L;
    !t

let phase_accounting () =
  let p = Phase.create ~clock:(fake_clock ()) () in
  Alcotest.(check int) "42" 42 (Phase.span p "walk" (fun () -> 42));
  (* Small enough to land on the minor heap (< 256 words). *)
  ignore (Phase.span p "walk" (fun () -> Sys.opaque_identity (Array.make 100 0)));
  Phase.span p "setup" (fun () -> ());
  (match Phase.find p "walk" with
  | None -> Alcotest.fail "walk bucket missing"
  | Some e ->
      Alcotest.(check int) "walk calls" 2 e.Phase.calls;
      (* Each span reads the fake clock twice, 10 ns apart. *)
      Alcotest.(check int64) "walk elapsed" 20L e.Phase.elapsed_ns;
      Alcotest.(check bool) "allocation attributed" true (e.Phase.minor_words > 0.0));
  Alcotest.(check int) "buckets" 2 (List.length (Phase.entries p));
  Alcotest.(check int64) "total" 30L (Phase.total_elapsed_ns p);
  (* Sorted deterministically by phase name. *)
  Alcotest.(check (list string)) "entry order" [ "setup"; "walk" ]
    (List.map (fun (e : Phase.entry) -> e.Phase.phase) (Phase.entries p))

let phase_records_on_raise () =
  let p = Phase.create ~clock:(fake_clock ()) () in
  Alcotest.check_raises "span re-raises" (Failure "boom") (fun () ->
      Phase.span p "walk" (fun () -> failwith "boom"));
  match Phase.find p "walk" with
  | Some e ->
      Alcotest.(check int) "raise still recorded" 1 e.Phase.calls;
      Alcotest.(check int64) "elapsed recorded" 10L e.Phase.elapsed_ns
  | None -> Alcotest.fail "walk bucket missing after raise"

let span_opt_none_is_free () =
  Alcotest.(check int) "plain call" 7 (Phase.span_opt None "walk" (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Runner integration: the gauge families are strictly opt-in. *)

let small_config =
  {
    Sim.Runner.default_config with
    node_count = 50;
    article_count = 300;
    query_count = 200;
  }

let family_names (snapshot : Obs.Metrics.snapshot) =
  List.map (fun (f : Obs.Metrics.family) -> f.Obs.Metrics.name) snapshot

let has_prefix prefix name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let runner_gauges_opt_in () =
  let plain = Sim.Runner.run small_config in
  let profiled_families =
    let phases = Phase.create () in
    let r = Sim.Runner.run ~phases small_config in
    family_names r.Sim.Runner.metrics
  in
  let plain_families = family_names plain.Sim.Runner.metrics in
  Alcotest.(check bool) "no phase/gc families by default" false
    (List.exists
       (fun n -> has_prefix "p2pindex_phase_" n || has_prefix "p2pindex_gc_" n)
       plain_families);
  List.iter
    (fun family ->
      Alcotest.(check bool) (family ^ " present when profiled") true
        (List.mem family profiled_families))
    [
      "p2pindex_phase_elapsed_ns";
      "p2pindex_phase_minor_words";
      "p2pindex_gc_minor_words";
      "p2pindex_gc_major_collections";
      "p2pindex_gc_heap_words";
    ];
  (* Profiling must not perturb the simulation itself. *)
  let profiled = Sim.Runner.run ~phases:(Phase.create ()) small_config in
  Alcotest.(check int) "same errors" plain.Sim.Runner.errors profiled.Sim.Runner.errors;
  Alcotest.(check int) "same traffic" plain.Sim.Runner.request_bytes
    profiled.Sim.Runner.request_bytes

let engine_profiles_walk_per_quantum () =
  let phases = Phase.create () in
  let r = Sim.Engine.run ~phases ~concurrency:4 small_config in
  Alcotest.(check int) "all sessions finish" small_config.Sim.Runner.query_count
    (Stdx.Stats.Summary.count r.Sim.Engine.base.Sim.Runner.interactions);
  match Phase.find phases "walk" with
  | Some e ->
      (* Quanta outnumber sessions: every session takes at least one. *)
      Alcotest.(check bool) "at least one quantum per session" true
        (e.Phase.calls >= small_config.Sim.Runner.query_count)
  | None -> Alcotest.fail "engine did not profile the walk phase"

let suite =
  [
    ( "obs:bench-report",
      [
        Alcotest.test_case "round-trip" `Quick roundtrip;
        Alcotest.test_case "deterministic bytes" `Quick serialization_deterministic;
        Alcotest.test_case "schema guard" `Quick schema_guard;
        Alcotest.test_case "label of path" `Quick label_of_path;
        Alcotest.test_case "flatten" `Quick flatten_view;
      ] );
    ( "obs:bench-diff",
      [
        Alcotest.test_case "verdicts on fixtures" `Quick verdicts;
        Alcotest.test_case "identical and within-band pass" `Quick within_and_identical;
        Alcotest.test_case "missing fails, added passes" `Quick missing_and_added;
        Alcotest.test_case "scale mismatch rejected" `Quick scale_mismatch;
        Alcotest.test_case "zero baseline" `Quick zero_baseline_regresses;
        Alcotest.test_case "threshold override" `Quick threshold_override;
      ] );
    ( "obs:phase",
      [
        Alcotest.test_case "accounting with injected clock" `Quick phase_accounting;
        Alcotest.test_case "records on raise" `Quick phase_records_on_raise;
        Alcotest.test_case "span_opt none" `Quick span_opt_none_is_free;
      ] );
    ( "sim:profiling",
      [
        Alcotest.test_case "gauges are opt-in" `Quick runner_gauges_opt_in;
        Alcotest.test_case "engine profiles quanta" `Quick engine_profiles_walk_per_quantum;
      ] );
  ]

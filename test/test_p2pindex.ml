(* Core index-layer tests over the generic XPath instance, built on the
   paper's running example: the Fig. 1 descriptors, the Fig. 4 indexing
   scheme, and the Fig. 5/6 distributed indexes. *)

module Xml = Xmlkit.Xml
module Index = P2pindex.Xpath_index
module Scheme = P2pindex.Scheme
module Wire = P2pindex.Wire

let doc_of_fields ~first ~last ~title ~conf ~year ~size =
  Xml.element "article"
    [
      Xml.element "author" [ Xml.leaf "first" first; Xml.leaf "last" last ];
      Xml.leaf "title" title;
      Xml.leaf "conf" conf;
      Xml.leaf "year" year;
      Xml.leaf "size" size;
    ]

let d1 =
  doc_of_fields ~first:"John" ~last:"Smith" ~title:"TCP" ~conf:"SIGCOMM" ~year:"1989"
    ~size:"315635"

let d2 =
  doc_of_fields ~first:"John" ~last:"Smith" ~title:"IPv6" ~conf:"INFOCOM" ~year:"1996"
    ~size:"312352"

let d3 =
  doc_of_fields ~first:"Alan" ~last:"Doe" ~title:"Wavelets" ~conf:"INFOCOM" ~year:"1996"
    ~size:"259827"

let msd1 = Xpath.of_document d1
let msd2 = Xpath.of_document d2
let msd3 = Xpath.of_document d3

let q s = Xpath.of_string s

(* The Fig. 4 hierarchical indexing scheme, expressed as edges per document:
   last name -> author -> (author, title) -> MSD on one side, and
   conference / year -> (conference, year) -> MSD on the other. *)
let fig4_edges doc =
  let field name =
    match Xml.find_child doc name with
    | Some child -> Xml.text_content child
    | None -> invalid_arg "fig4_edges: missing field"
  in
  let author = Option.get (Xml.find_child doc "author") in
  let first = Xml.text_content (Option.get (Xml.find_child author "first")) in
  let last = Xml.text_content (Option.get (Xml.find_child author "last")) in
  let msd = Xpath.of_document doc in
  let q_last = q (Printf.sprintf "/article/author/last/%s" last) in
  let q_author = q (Printf.sprintf "/article/author[first/%s][last/%s]" first last) in
  let q_at =
    q
      (Printf.sprintf "/article[author[first/%s][last/%s]][title/%s]" first last
         (field "title"))
  in
  let q_title = q (Printf.sprintf "/article/title/%s" (field "title")) in
  let q_conf = q (Printf.sprintf "/article/conf/%s" (field "conf")) in
  let q_year = q (Printf.sprintf "/article/year/%s" (field "year")) in
  let q_cy =
    q (Printf.sprintf "/article[conf/%s][year/%s]" (field "conf") (field "year"))
  in
  [
    { Scheme.parent = q_last; child = q_author };
    { Scheme.parent = q_author; child = q_at };
    { Scheme.parent = q_title; child = q_at };
    { Scheme.parent = q_at; child = msd };
    { Scheme.parent = q_conf; child = q_cy };
    { Scheme.parent = q_year; child = q_cy };
    { Scheme.parent = q_cy; child = msd };
  ]

let fig4_scheme =
  Scheme.make ~name:"fig4" ~edges:(fun msd ->
      (* Recover the document from its most specific query by matching
         against the known corpus — fine for a three-document test. *)
      let doc =
        List.find (fun doc -> Xpath.equal (Xpath.of_document doc) msd) [ d1; d2; d3 ]
      in
      fig4_edges doc)

let file_of doc name = { Storage.Block_store.name; size_bytes = Xml.size_bytes doc }

let make_index ?network () =
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:77L ~node_count:20 ()) in
  let index = Index.create ?network ~resolver () in
  Index.publish index ~scheme:fig4_scheme ~msd:msd1 (file_of d1 "x.pdf");
  Index.publish index ~scheme:fig4_scheme ~msd:msd2 (file_of d2 "y.pdf");
  Index.publish index ~scheme:fig4_scheme ~msd:msd3 (file_of d3 "z.pdf");
  index

let q6 = q "/article/author/last/Smith"
let q3 = q "/article/author[first/John][last/Smith]"
let q4 = q "/article/title/TCP"
let q5 = q "/article/conf/INFOCOM"
let q2 = q "/article[author[first/John][last/Smith]][conf/INFOCOM]"

let names results = List.sort compare (List.map (fun (_q, f) -> f.Storage.Block_store.name) results)

let lookup_step_cases () =
  let index = make_index () in
  (match Index.lookup_step index q6 with
  | Index.Children [ child ] ->
      Alcotest.(check string) "q6 resolves to q3" (Xpath.to_string q3) (Xpath.to_string child)
  | Index.Children _ | Index.File _ | Index.Not_indexed ->
      Alcotest.fail "q6 should map to exactly q3");
  (match Index.lookup_step index q3 with
  | Index.Children children -> Alcotest.(check int) "q3 has two articles" 2 (List.length children)
  | Index.File _ | Index.Not_indexed -> Alcotest.fail "q3 should have children");
  (match Index.lookup_step index msd1 with
  | Index.File f -> Alcotest.(check string) "msd1 is the file" "x.pdf" f.Storage.Block_store.name
  | Index.Children _ | Index.Not_indexed -> Alcotest.fail "msd1 should return the file");
  match Index.lookup_step index q2 with
  | Index.Not_indexed -> ()
  | Index.File _ | Index.Children _ -> Alcotest.fail "q2 is not indexed"

let search_follows_fig3_paths () =
  let index = make_index () in
  Alcotest.(check (list string)) "q6 finds Smith's articles" [ "x.pdf"; "y.pdf" ]
    (names (Index.search index q6));
  Alcotest.(check (list string)) "q5 finds the INFOCOM articles" [ "y.pdf"; "z.pdf" ]
    (names (Index.search index q5));
  Alcotest.(check (list string)) "q4 finds the TCP article" [ "x.pdf" ]
    (names (Index.search index q4));
  Alcotest.(check (list string)) "msd lookup is direct" [ "z.pdf" ]
    (names (Index.search index msd3))

let search_counts_interactions () =
  let index = make_index () in
  let interactions = ref 0 in
  (* q6 -> q3 -> two (author,title) queries -> two MSDs: 1 + 1 + 2 + 2. *)
  ignore (Index.search ~interactions index q6);
  Alcotest.(check int) "interaction count along q6" 6 !interactions

let search_respects_max_results () =
  let index = make_index () in
  let results = Index.search ~max_results:1 index q6 in
  Alcotest.(check int) "stops at one" 1 (List.length results)

let generalization_recovers_q2 () =
  (* q2 = John Smith at INFOCOM is a valid query for d2 but appears in no
     index (Section IV-B's example): generalization must still find d2, and
     only d2. *)
  let index = make_index () in
  let interactions = ref 0 in
  let results = Index.search_with_generalization ~interactions index q2 in
  Alcotest.(check (list string)) "exactly d2" [ "y.pdf" ] (names results);
  Alcotest.(check bool) "costs extra interactions" true (!interactions > 3)

let generalization_of_indexed_query_is_plain_search () =
  let index = make_index () in
  Alcotest.(check (list string)) "same result as search" [ "x.pdf"; "y.pdf" ]
    (names (Index.search_with_generalization index q6))

let generalization_budget_respected () =
  let index = make_index () in
  (* A hopeless query with a budget of zero probes finds nothing. *)
  let impossible = q "/article[conf/NOSUCH][year/1234]" in
  Alcotest.(check int) "no results under zero budget" 0
    (List.length (Index.search_with_generalization ~generalization_budget:0 index impossible))

let covering_violation_rejected () =
  let index = make_index () in
  (* q4 (title TCP) does not cover q5 (conf INFOCOM). *)
  match Index.insert_mapping index ~parent:q4 ~child:q5 with
  | _ -> Alcotest.fail "expected Covering_violation"
  | exception Index.Covering_violation { parent; child } ->
      Alcotest.(check string) "parent" (Xpath.to_string q4) parent;
      Alcotest.(check string) "child" (Xpath.to_string q5) child

let duplicate_mapping_not_inserted () =
  let index = make_index () in
  Alcotest.(check bool) "existing mapping not re-added" false
    (Index.insert_mapping index ~parent:q6 ~child:q3);
  (* (year ; msd2) is covered but not installed by the Fig. 4 scheme. *)
  Alcotest.(check bool) "new mapping added" true
    (Index.insert_mapping index ~parent:(q "/article/year/1996") ~child:msd2)

let shortcut_mapping_allowed () =
  (* Section IV-C: a (q6 ; d1) entry can be added to short-circuit the
     hierarchy for a popular file. *)
  let index = make_index () in
  Alcotest.(check bool) "shortcut accepted" true
    (Index.insert_mapping index ~parent:q6 ~child:msd1);
  match Index.lookup_step index q6 with
  | Index.Children children -> Alcotest.(check int) "q6 now has two children" 2 (List.length children)
  | Index.File _ | Index.Not_indexed -> Alcotest.fail "q6 should have children"

let unpublish_cleans_up () =
  let index = make_index () in
  let before = Index.mapping_count index in
  Index.unpublish index ~scheme:fig4_scheme ~msd:msd1;
  Alcotest.(check (list string)) "d1 gone from q6 paths" [ "y.pdf" ]
    (names (Index.search index q6));
  Alcotest.(check (list string)) "title index emptied" []
    (names (Index.search index q4));
  (match Index.lookup_step index q4 with
  | Index.Not_indexed -> ()
  | Index.File _ | Index.Children _ -> Alcotest.fail "q4 should be cleaned up");
  (* Shared entries (q6 -> q3) survive because d2 still needs them. *)
  (match Index.lookup_step index q6 with
  | Index.Children [ _ ] -> ()
  | Index.Children _ | Index.File _ | Index.Not_indexed ->
      Alcotest.fail "q6 -> q3 must survive");
  Alcotest.(check bool) "mappings decreased" true (Index.mapping_count index < before);
  (* d2 and d3 still fully reachable. *)
  Alcotest.(check (list string)) "q5 unaffected" [ "y.pdf"; "z.pdf" ]
    (names (Index.search index q5))

let unpublish_everything_leaves_empty_index () =
  let index = make_index () in
  Index.unpublish index ~scheme:fig4_scheme ~msd:msd1;
  Index.unpublish index ~scheme:fig4_scheme ~msd:msd2;
  Index.unpublish index ~scheme:fig4_scheme ~msd:msd3;
  Alcotest.(check int) "no mappings left" 0 (Index.mapping_count index);
  Alcotest.(check int) "no files left" 0 (Index.file_count index)

let traffic_accounting () =
  let network = Dht.Network.create ~node_count:20 () in
  let index = make_index ~network () in
  let publish_traffic = Dht.Network.bytes network Dht.Network.Maintenance in
  Alcotest.(check bool) "publishing billed as maintenance" true (publish_traffic > 0);
  Dht.Network.reset network;
  ignore (Index.search index q6);
  let requests = Dht.Network.bytes network Dht.Network.Request in
  let responses = Dht.Network.bytes network Dht.Network.Response in
  Alcotest.(check bool) "requests billed" true (requests > 0);
  Alcotest.(check bool) "responses billed" true (responses > 0);
  Alcotest.(check int) "six lookups" 6 (Dht.Network.messages network Dht.Network.Request);
  (* Touches mirror request count. *)
  Alcotest.(check int) "touch per interaction" 6
    (Array.fold_left ( + ) 0 (Dht.Network.touches network))

let storage_accounting () =
  let index = make_index () in
  (* 7 edges per document = 21, minus the shared (q6 ; q3) entry of d1/d2
     and the shared conference/year -> (INFOCOM, 1996) entries of d2/d3 —
     "coarse-level indexes are shared by many data items" (Section IV-D). *)
  Alcotest.(check int) "shared coarse entries deduplicated" 18 (Index.mapping_count index);
  Alcotest.(check int) "three files" 3 (Index.file_count index);
  Alcotest.(check bool) "index bytes positive" true (Index.index_bytes index > 0);
  let entries = Array.fold_left ( + ) 0 (Index.entries_per_node index) in
  Alcotest.(check int) "entries = mappings + files" (18 + 3) entries

let wire_model_consistency () =
  Alcotest.(check int) "request = header + query" (Wire.header_bytes + 3)
    (Wire.request_bytes "abc");
  Alcotest.(check int) "empty response is a bare header" Wire.header_bytes
    (Wire.response_bytes []);
  Alcotest.(check bool) "response grows with entries" true
    (Wire.response_bytes [ "a"; "b" ] > Wire.response_bytes [ "a" ]);
  Alcotest.(check bool) "stored entry accounts key + target" true
    (Wire.stored_entry_bytes "abc" = 23)

let key_of_query_deterministic () =
  let k1 = Index.key_of_query q6 in
  let k2 = Index.key_of_query (q "/article/author/last/Smith") in
  Alcotest.(check string) "same canonical query, same key" (Hashing.Key.to_hex k1)
    (Hashing.Key.to_hex k2)

(* ------------------------------------------------------------------ *)
(* Interactive sessions. *)

module Session = P2pindex.Session.Make (P2pindex.Xpath_query) (Index)

let session_walks_the_hierarchy () =
  let index = make_index () in
  let session = Session.start index q6 in
  Alcotest.(check int) "one option at q6" 1 (List.length (Session.options session));
  Alcotest.(check int) "one interaction so far" 1 (Session.interactions session);
  let _ = Session.refine_nth session 0 in
  Alcotest.(check int) "two articles under q3" 2 (List.length (Session.options session));
  let _ = Session.refine_nth session 0 in
  let _ = Session.refine_nth session 0 in
  (match Session.file session with
  | Some _ -> ()
  | None -> Alcotest.fail "descending three times reaches a file");
  Alcotest.(check int) "four interactions" 4 (Session.interactions session);
  Alcotest.(check int) "depth four" 4 (Session.depth session);
  Alcotest.(check int) "one file discovered" 1 (List.length (Session.discovered session))

let session_back_and_explore () =
  let index = make_index () in
  let session = Session.start index q6 in
  let _ = Session.refine_nth session 0 in
  let _ = Session.refine_nth session 0 in
  Alcotest.(check bool) "back succeeds" true (Session.back session <> None);
  Alcotest.(check int) "depth back to two" 2 (Session.depth session);
  let found = Session.explore_all session in
  Alcotest.(check int) "exploring q3 finds both Smith articles" 2 (List.length found);
  Alcotest.(check int) "both recorded" 2 (List.length (Session.discovered session));
  (* Backing past the root is refused. *)
  ignore (Session.back session);
  Alcotest.(check (option reject)) "cannot back past the root" None
    (Option.map (fun _ -> ()) (Session.back session))

let session_rejects_foreign_choice () =
  let index = make_index () in
  let session = Session.start index q6 in
  Alcotest.check_raises "option must come from the result set" Session.No_such_option
    (fun () -> ignore (Session.refine session q5));
  Alcotest.check_raises "index out of range" Session.No_such_option (fun () ->
      ignore (Session.refine_nth session 5))

let session_dead_end () =
  let index = make_index () in
  let session = Session.start index q2 in
  Alcotest.(check bool) "non-indexed query is a dead end" true
    (Session.at_dead_end session)

let session_trail_and_explore_accounting () =
  let index = make_index () in
  let session = Session.start index q6 in
  let _ = Session.refine_nth session 0 in
  Alcotest.(check int) "trail lists root first" 2 (List.length (Session.trail session));
  (match Session.trail session with
  | [ root; current ] ->
      Alcotest.(check string) "root is q6" (Xpath.to_string q6) (Xpath.to_string root);
      Alcotest.(check string) "current is q3" (Xpath.to_string q3) (Xpath.to_string current)
  | _ -> Alcotest.fail "unexpected trail");
  (* explore_all bills its lookups into the session's interaction count. *)
  let before = Session.interactions session in
  let found = Session.explore_all session in
  Alcotest.(check int) "two files" 2 (List.length found);
  (* Two (author,title) options, each 1 lookup + 1 MSD fetch. *)
  Alcotest.(check int) "explore adds four interactions" (before + 4)
    (Session.interactions session)

let store_file_replaces () =
  let index = make_index () in
  Index.store_file index ~msd:msd1 { Storage.Block_store.name = "v2.pdf"; size_bytes = 7 };
  match Index.lookup_step index msd1 with
  | Index.File f -> Alcotest.(check string) "replaced payload" "v2.pdf" f.Storage.Block_store.name
  | Index.Children _ | Index.Not_indexed -> Alcotest.fail "file expected"

let wire_install_and_file_sizes () =
  Alcotest.(check int) "cache install = header + 2 prefixes + strings"
    (Wire.header_bytes + (2 * Wire.entry_overhead_bytes) + 5)
    (Wire.cache_install_bytes "ab" "cde");
  let file = { Storage.Block_store.name = "x.pdf"; size_bytes = 123 } in
  Alcotest.(check int) "file response = header + prefix + name + 8"
    (Wire.header_bytes + Wire.entry_overhead_bytes + 5 + 8)
    (Wire.file_response_bytes file)

let suite =
  [
    ( "p2pindex:lookup",
      [
        Alcotest.test_case "lookup_step cases" `Quick lookup_step_cases;
        Alcotest.test_case "search follows Fig. 3 paths" `Quick search_follows_fig3_paths;
        Alcotest.test_case "search counts interactions" `Quick search_counts_interactions;
        Alcotest.test_case "search max_results" `Quick search_respects_max_results;
        Alcotest.test_case "generalization recovers q2" `Quick generalization_recovers_q2;
        Alcotest.test_case "generalization on indexed query" `Quick
          generalization_of_indexed_query_is_plain_search;
        Alcotest.test_case "generalization budget" `Quick generalization_budget_respected;
      ] );
    ( "p2pindex:publication",
      [
        Alcotest.test_case "covering violations rejected" `Quick covering_violation_rejected;
        Alcotest.test_case "duplicate mappings" `Quick duplicate_mapping_not_inserted;
        Alcotest.test_case "popularity shortcuts allowed" `Quick shortcut_mapping_allowed;
        Alcotest.test_case "unpublish cleans up" `Quick unpublish_cleans_up;
        Alcotest.test_case "unpublish everything" `Quick unpublish_everything_leaves_empty_index;
      ] );
    ( "p2pindex:accounting",
      [
        Alcotest.test_case "traffic accounting" `Quick traffic_accounting;
        Alcotest.test_case "storage accounting" `Quick storage_accounting;
        Alcotest.test_case "wire model" `Quick wire_model_consistency;
        Alcotest.test_case "query keys deterministic" `Quick key_of_query_deterministic;
      ] );
    ( "p2pindex:session",
      [
        Alcotest.test_case "walks the hierarchy" `Quick session_walks_the_hierarchy;
        Alcotest.test_case "back and explore" `Quick session_back_and_explore;
        Alcotest.test_case "foreign choices rejected" `Quick session_rejects_foreign_choice;
        Alcotest.test_case "dead ends" `Quick session_dead_end;
        Alcotest.test_case "trail and explore accounting" `Quick
          session_trail_and_explore_accounting;
        Alcotest.test_case "store_file replaces" `Quick store_file_replaces;
        Alcotest.test_case "wire install and file sizes" `Quick wire_install_and_file_sizes;
      ] );
  ]

(* Routed prefix/range index tests: the order-preserving key mapping,
   arc-covering resolution, the spanning-tree multicast, and the
   end-to-end prefix scheme through the walk machinery.  The two issue
   properties are here as qcheck laws: routed results equal a
   brute-force substring scan, and multicast dissemination delivers
   exactly once within the members + edges message bound. *)

module Key = Prefix.Prefix_key
module Multicast = Prefix.Multicast
module Router = Prefix.Range_router
module Pindex = Prefix.Prefix_index
module Runner = Sim.Runner
module Schemes = Bib.Schemes
module Q = Bib.Bib_query

let resolver ?(node_count = 64) () =
  Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:11L ~node_count ())

(* ------------------------------------------------------------------ *)
(* Prefix_key: the order-preserving prefix -> ring-arc mapping. *)

let key_basics () =
  Alcotest.(check int) "max_bytes is the key width" (Hashing.Key.bits / 8) Key.max_bytes;
  Alcotest.(check bool) "is_prefix reflexive" true (Key.is_prefix "Smi" "Smi");
  Alcotest.(check bool) "Smi prefixes Smith" true (Key.is_prefix "Smi" "Smith");
  Alcotest.(check bool) "Smith does not prefix Smi" false (Key.is_prefix "Smith" "Smi");
  Alcotest.(check bool) "empty prefixes everything" true (Key.is_prefix "" "Doe");
  let lo, hi = Key.range "Smi" in
  Alcotest.(check bool) "lo <= hi" true (Hashing.Key.compare lo hi <= 0);
  Alcotest.(check bool) "Smith inside [Smi] arc" true
    (Key.in_range "Smi" ~key:(Key.encode "Smith"));
  Alcotest.(check bool) "Doe outside [Smi] arc" false
    (Key.in_range "Smi" ~key:(Key.encode "Doe"))

let small_string =
  let gen =
    QCheck.Gen.(
      string_size
        ~gen:(map (fun i -> Char.chr (Char.code 'a' + i)) (int_range 0 3))
        (int_range 1 8))
  in
  QCheck.make ~print:(fun s -> s) gen

let encode_order_preserving =
  QCheck.Test.make ~name:"encode preserves lexicographic order" ~count:500
    (QCheck.pair small_string small_string)
    (fun (a, b) ->
      let strings = String.compare a b in
      let keys = Hashing.Key.compare (Key.encode a) (Key.encode b) in
      if strings < 0 then keys <= 0
      else if strings > 0 then keys >= 0
      else keys = 0)

let prefix_lands_in_range =
  QCheck.Test.make ~name:"matching terms land inside the prefix arc" ~count:500
    (QCheck.pair small_string small_string)
    (fun (p, rest) ->
      let term = p ^ rest in
      Key.in_range p ~key:(Key.encode term))

(* ------------------------------------------------------------------ *)
(* Range_router: responsible nodes of matching terms are covered. *)

let covering_contains_responsible () =
  let resolver = resolver () in
  let terms = [ "Smith"; "Smythe"; "Doe"; "Garcia"; "Gao"; "Nguyen"; "N" ] in
  List.iter
    (fun term ->
      List.iter
        (fun len ->
          let prefix = String.sub term 0 (Stdlib.min len (String.length term)) in
          let covering = Router.covering_prefix resolver prefix in
          let home = Dht.Resolver.responsible resolver (Key.encode term) in
          Alcotest.(check bool)
            (Printf.sprintf "responsible(%s) covered by %S" term prefix)
            true (List.mem home covering))
        [ 1; 2; 3 ])
    terms

let covering_is_endpoint_bounded () =
  let resolver = resolver () in
  let lo, hi = Key.range "Gar" in
  let covering = Router.covering_nodes resolver ~lo ~hi in
  Alcotest.(check bool) "non-empty" true (covering <> []);
  Alcotest.(check int) "starts at responsible lo"
    (Dht.Resolver.responsible resolver lo)
    (List.hd covering);
  Alcotest.(check int) "ends at responsible hi"
    (Dht.Resolver.responsible resolver hi)
    (List.nth covering (List.length covering - 1))

(* ------------------------------------------------------------------ *)
(* Multicast: deterministic heap layout, exactly-once dissemination. *)

let tree_shape () =
  let tree = Multicast.build [ 5; 3; 5; 7 ] in
  Alcotest.(check (list int)) "dedup keeps first occurrences" [ 5; 3; 7 ]
    (Multicast.members tree);
  Alcotest.(check int) "root is the first member" 5 (Multicast.root tree);
  Alcotest.(check int) "edges = members - 1" 2 (Multicast.edge_count tree);
  Alcotest.(check (list (pair int int))) "heap edges in slot order"
    [ (5, 3); (5, 7) ]
    (Multicast.edges tree);
  Alcotest.(check int) "depth of 3 members" 2 (Multicast.depth tree);
  Alcotest.(check int) "singleton depth" 1 (Multicast.depth (Multicast.build [ 9 ]));
  let big = Multicast.build (List.init 64 (fun i -> i)) in
  Alcotest.(check int) "64 members span 7 levels" 7 (Multicast.depth big);
  (match Multicast.build [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty member list accepted")

let dissemination_exactly_once () =
  let members = List.init 40 (fun i -> i * 3 mod 121) in
  let tree = Multicast.build members in
  let network = Dht.Network.create ~node_count:121 () in
  let rpc = Dht.Rpc.create ~network () in
  let delivered = ref [] in
  let stats =
    Multicast.disseminate ~rpc ~category:Dht.Network.Maintenance
      ~bytes:(fun _ -> 32)
      ~deliver:(fun node -> delivered := node :: !delivered)
      tree
  in
  Alcotest.(check (list int)) "every member delivered exactly once, in slot order"
    (Multicast.members tree)
    (List.rev !delivered);
  Alcotest.(check int) "messages billed on the network" stats.Multicast.messages
    (Dht.Network.total_messages network);
  Alcotest.(check int) "one message per member" (Multicast.member_count tree)
    stats.Multicast.messages;
  Alcotest.(check bool) "messages within members + edges" true
    (stats.Multicast.messages
    <= Multicast.member_count tree + Multicast.edge_count tree);
  Alcotest.(check int) "stats depth matches the tree" (Multicast.depth tree)
    stats.Multicast.depth

(* ------------------------------------------------------------------ *)
(* Prefix_index: routed queries vs brute force, multicast installs. *)

let render = string_of_int

let fresh_index ?rpc ?(node_count = 16) () =
  Pindex.create ?rpc ~render ~resolver:(resolver ~node_count ()) ()

let publish_all index entries =
  List.iter (fun (term, v) -> Pindex.publish index ~term v) entries

let brute_force entries ~prefix =
  List.filter (fun (term, _) -> Key.is_prefix prefix term) entries
  |> List.map (fun (term, v) -> (term, render v))
  |> List.sort_uniq compare

let rendered results = List.map (fun (term, v) -> (term, render v)) results

let entries_arbitrary =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 40)
        (pair
           (string_size
              ~gen:(map (fun i -> Char.chr (Char.code 'a' + i)) (int_range 0 2))
              (int_range 1 5))
           (int_range 0 9)))
  in
  QCheck.make
    ~print:(fun entries ->
      String.concat ";" (List.map (fun (t, v) -> t ^ "=" ^ render v) entries))
    gen

let prefix_arbitrary =
  let gen =
    QCheck.Gen.(
      string_size
        ~gen:(map (fun i -> Char.chr (Char.code 'a' + i)) (int_range 0 2))
        (int_range 0 3))
  in
  QCheck.make ~print:(fun s -> "prefix:" ^ s) gen

let routed_equals_brute_force =
  QCheck.Test.make ~name:"routed query equals brute-force substring scan"
    ~count:200
    (QCheck.pair entries_arbitrary prefix_arbitrary)
    (fun (entries, prefix) ->
      let index = fresh_index () in
      publish_all index entries;
      let expected = brute_force entries ~prefix in
      rendered (Pindex.query index ~prefix) = expected
      && rendered (Pindex.query ~multicast:true index ~prefix) = expected
      && rendered (Pindex.query_broadcast index ~prefix) = expected)

let multicast_install_equals_sequential =
  QCheck.Test.make ~name:"multicast install state equals sequential installs"
    ~count:100 entries_arbitrary
    (fun entries ->
      let node_count = 16 in
      let sequential = fresh_index ~node_count () in
      publish_all sequential entries;
      let multicast = fresh_index ~node_count () in
      let bound_ok =
        match Pindex.publish_multicast multicast entries with
        | Some stats ->
            (* messages <= covering members + tree edges *)
            stats.Multicast.messages <= (2 * stats.Multicast.fanout) - 1
        | None -> entries = []
      in
      bound_ok
      && List.for_all
        (fun node -> Pindex.entries_on sequential node = Pindex.entries_on multicast node)
        (List.init node_count (fun i -> i))
      && List.for_all
           (fun prefix ->
             rendered (Pindex.query sequential ~prefix)
             = rendered (Pindex.query multicast ~prefix))
           [ ""; "a"; "b"; "ab"; "ba"; "c" ])

let routed_cheaper_than_broadcast () =
  let node_count = 64 in
  let network = Dht.Network.create ~node_count () in
  let rpc = Dht.Rpc.create ~network () in
  let index = fresh_index ~rpc ~node_count () in
  let articles =
    Bib.Corpus.generate ~seed:5L (Bib.Corpus.default_config ~article_count:300)
  in
  Array.iteri
    (fun i (a : Bib.Article.t) ->
      List.iter
        (fun (x : Bib.Article.author) -> Pindex.publish index ~term:x.Bib.Article.last i)
        a.Bib.Article.authors)
    articles;
  Dht.Network.reset network;
  let measure f =
    let bytes = Dht.Network.total_bytes network in
    let messages = Dht.Network.total_messages network in
    let results = f () in
    ( results,
      Dht.Network.total_bytes network - bytes,
      Dht.Network.total_messages network - messages )
  in
  let prefix = "S" in
  let covering = List.length (Pindex.covering_nodes index ~prefix) in
  Alcotest.(check bool) "routed set is a strict subset of the network" true
    (covering > 0 && covering < node_count);
  let direct, direct_bytes, direct_messages = measure (fun () -> Pindex.query index ~prefix) in
  let broadcast, broadcast_bytes, broadcast_messages =
    measure (fun () -> Pindex.query_broadcast index ~prefix)
  in
  Alcotest.(check bool) "same answers" true (rendered direct = rendered broadcast);
  Alcotest.(check bool) "routed costs fewer bytes" true (direct_bytes < broadcast_bytes);
  Alcotest.(check bool) "routed sends fewer messages" true
    (direct_messages < broadcast_messages)

let dropped_node_forgets_entries () =
  let index = fresh_index () in
  publish_all index [ ("abc", 1); ("abd", 2); ("b", 3) ];
  let total = Pindex.entry_count index in
  Alcotest.(check int) "three entries stored" 3 total;
  List.iter (fun node -> Pindex.drop_node_state index node) (List.init 16 (fun i -> i));
  Alcotest.(check int) "all state dropped" 0 (Pindex.entry_count index);
  Alcotest.(check (list (pair string int))) "queries find nothing" []
    (Pindex.query index ~prefix:"")

(* ------------------------------------------------------------------ *)
(* Bib recognition: xpath prefix chains compile to Author_last_prefix. *)

let xpath_prefix_recognition () =
  let round_trip p =
    match Q.of_xpath_author_prefix (Q.to_xpath (Q.author_last_prefix p)) with
    | Some q -> Alcotest.(check int) ("round-trips " ^ p) 0 (Q.compare q (Q.author_last_prefix p))
    | None -> Alcotest.failf "failed to recognize %S" p
  in
  List.iter round_trip [ "S"; "Smi"; "Garcia" ];
  let rejects input =
    Alcotest.(check bool) ("rejects " ^ input) true
      (Q.of_xpath_author_prefix (Xpath.of_string input) = None)
  in
  List.iter rejects
    [
      "/article/author/last/Smith";
      "/article/author/first/Smi*";
      "/article[author[last/Smi*]][conf/SIGCOMM]";
      "/article/author/last/*";
    ]

(* ------------------------------------------------------------------ *)
(* End-to-end: the prefix scheme through Runner and the engine. *)

let small =
  {
    Runner.default_config with
    node_count = 50;
    article_count = 400;
    query_count = 3_000;
    seed = 7L;
    scheme = Schemes.Prefix;
    mix = Workload.Query_gen.prefix_mix Runner.default_config.mix;
  }

let prefix_config ~multicast = Some { Runner.prefix_len = 2; multicast }

let scheme_end_to_end () =
  List.iter
    (fun multicast ->
      let r = Runner.run { small with prefix = prefix_config ~multicast } in
      Alcotest.(check int) "no unreachable targets" 0 r.Runner.unreachable;
      Alcotest.(check bool) "prefix queries were routed" true
        (Obs.Metrics.counter_total r.Runner.metrics "p2pindex_prefix_queries_total" > 0))
    [ false; true ]

let scheme_deterministic () =
  let run () = Runner.run { small with prefix = prefix_config ~multicast:true } in
  let a = run () and b = run () in
  Alcotest.(check (float 0.0)) "same interactions" (Runner.interactions_mean a)
    (Runner.interactions_mean b);
  Alcotest.(check int) "same response bytes" a.Runner.response_bytes b.Runner.response_bytes;
  Alcotest.(check int) "same messages" a.Runner.network_messages b.Runner.network_messages

let scheme_under_concurrency () =
  let cfg = { small with prefix = prefix_config ~multicast:true } in
  let sequential = Runner.run cfg in
  let engine1 = Sim.Engine.run ~concurrency:1 ~coalesce:false cfg in
  Alcotest.(check (float 0.0)) "engine@1 degenerates to the runner"
    (Runner.interactions_mean sequential)
    (Runner.interactions_mean engine1.Sim.Engine.base);
  let engine8 = Sim.Engine.run ~concurrency:8 ~coalesce:false cfg in
  Alcotest.(check int) "no unreachable targets at concurrency 8" 0
    engine8.Sim.Engine.base.Runner.unreachable

let churn_smoke () =
  let r =
    Runner.run
      {
        small with
        prefix = prefix_config ~multicast:true;
        churn = Some { Runner.default_churn with churn_rate = 0.002 };
      }
  in
  Alcotest.(check bool) "most sessions survive churn" true (Runner.availability r > 0.9)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "prefix:key",
      [ Alcotest.test_case "key basics" `Quick key_basics ]
      @ qcheck [ encode_order_preserving; prefix_lands_in_range ] );
    ( "prefix:router",
      [
        Alcotest.test_case "covering contains responsible" `Quick
          covering_contains_responsible;
        Alcotest.test_case "covering endpoint bounded" `Quick covering_is_endpoint_bounded;
      ] );
    ( "prefix:multicast",
      [
        Alcotest.test_case "tree shape" `Quick tree_shape;
        Alcotest.test_case "exactly-once dissemination" `Quick dissemination_exactly_once;
      ] );
    ( "prefix:index",
      [
        Alcotest.test_case "routed cheaper than broadcast" `Quick
          routed_cheaper_than_broadcast;
        Alcotest.test_case "dropped node forgets entries" `Quick
          dropped_node_forgets_entries;
        Alcotest.test_case "xpath prefix recognition" `Quick xpath_prefix_recognition;
      ]
      @ qcheck [ routed_equals_brute_force; multicast_install_equals_sequential ] );
    ( "prefix:scheme",
      [
        Alcotest.test_case "end to end" `Slow scheme_end_to_end;
        Alcotest.test_case "deterministic" `Quick scheme_deterministic;
        Alcotest.test_case "engine concurrency" `Slow scheme_under_concurrency;
        Alcotest.test_case "churn smoke" `Quick churn_smoke;
      ] );
  ]

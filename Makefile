# Developer entry points; `make dev` is what CI should run.

.PHONY: dev build lint test bench-json bench-baseline bench-smoke chaos clean

dev: build lint test bench-smoke

build:
	dune build @all

# Static analysis: determinism & hygiene rules over lib/ bin/ bench/ test/.
# Writes the machine-readable report next to the build artifacts and fails
# on any violation (suppressions need a spelled-out justification).
lint:
	dune build bin/p2plint.exe
	dune exec bin/p2plint.exe -- --json _build/lint-report.json .

test:
	dune runtest

# Reduced-scale structured bench report: a grid-backed table, a
# workload-only figure, the concurrent engine's coalescing sweep, and
# the routed prefix/multicast trade-off curve — one harness layer each —
# plus every micro-bench's allocation profile, written as
# BENCH_smoke.json (strict mode: byte-reproducible, no wall-clock
# fields).
bench-json:
	dune exec bench/main.exe -- --quick \
	  --experiment table1,fig7,concurrency-sweep,prefix-sweep \
	  --json-out BENCH_smoke.json

# Refresh the committed regression-gate baseline.  Run this (and commit
# the result) after an intentional perf change or a compiler bump —
# allocation counts are exact per compiler version, not portable
# across them.
bench-baseline:
	dune exec bench/main.exe -- --quick \
	  --experiment table1,fig7,concurrency-sweep,prefix-sweep \
	  --json-out bench/baseline/BENCH_baseline.json

# Reduced-scale reproduction smoke + regression gate: emit the report,
# then compare against the committed baseline.  Non-zero exit iff a
# metric regressed beyond its threshold or lost coverage.
bench-smoke: bench-json
	dune exec bin/benchdiff.exe -- bench/baseline/BENCH_baseline.json BENCH_smoke.json

# Fault-injection suite: the fault/RPC tests plus a seeded fault-sweep
# smoke run (deterministic, so CI diffs are meaningful).
chaos: build
	dune exec test/test_main.exe -- test faults
	dune exec test/test_main.exe -- test dht:rpc
	dune exec bench/main.exe -- --quick --experiment fault-sweep

clean:
	dune clean

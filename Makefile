# Developer entry points; `make dev` is what CI should run.

.PHONY: dev build lint test bench-smoke chaos clean

dev: build lint test bench-smoke

build:
	dune build @all

# Static analysis: determinism & hygiene rules over lib/ bin/ bench/ test/.
# Writes the machine-readable report next to the build artifacts and fails
# on any violation (suppressions need a spelled-out justification).
lint:
	dune build bin/p2plint.exe
	dune exec bin/p2plint.exe -- --json _build/lint-report.json .

test:
	dune runtest

# Reduced-scale reproduction smoke: a grid-backed table, a workload-only
# figure, and the concurrent engine's coalescing sweep — enough to catch
# a regression in each harness layer without a paper-scale run.
bench-smoke:
	dune exec bench/main.exe -- --quick --experiment table1
	dune exec bench/main.exe -- --quick --experiment fig7
	dune exec bench/main.exe -- --quick --experiment concurrency-sweep

# Fault-injection suite: the fault/RPC tests plus a seeded fault-sweep
# smoke run (deterministic, so CI diffs are meaningful).
chaos: build
	dune exec test/test_main.exe -- test faults
	dune exec test/test_main.exe -- test dht:rpc
	dune exec bench/main.exe -- --quick --experiment fault-sweep

clean:
	dune clean

# Developer entry points; `make dev` is what CI should run.

.PHONY: dev build test bench-smoke clean

dev: build test bench-smoke

build:
	dune build @all

test:
	dune runtest

bench-smoke:
	dune exec bench/main.exe -- --quick --experiment table1

clean:
	dune clean

# Developer entry points; `make dev` is what CI should run.

.PHONY: dev build lint lint-typed test bench-json bench-baseline bench-smoke bench-scale chaos clean

dev: build lint lint-typed test bench-smoke

build:
	dune build @all

# Static analysis: determinism & hygiene rules over lib/ bin/ bench/ test/.
# Writes the machine-readable report next to the build artifacts and fails
# on any violation (suppressions need a spelled-out justification).
lint:
	dune build bin/p2plint.exe
	dune exec bin/p2plint.exe -- --json _build/lint-report.json .

# Typed hot-path analysis: the P-series rules over the .cmt files dune
# emits (DESIGN.md §14), on top of the syntactic pass.  `dune build
# @check` materializes cmts for executables too; the combined report is
# written in both text and JSON forms for the CI artifact.
lint-typed:
	dune build @check bin/p2plint.exe
	dune exec bin/p2plint.exe -- --typed \
	  --text-out _build/lint-typed-report.txt \
	  --json-out _build/lint-typed-report.json .

test:
	dune runtest

# Reduced-scale structured bench report: a grid-backed table, a
# workload-only figure, the concurrent engine's coalescing sweep, the
# routed prefix/multicast trade-off curve, the quorum consistency
# sweep, and the sharded-engine scale sweep — one harness layer each —
# plus every micro-bench's allocation profile, written as
# BENCH_smoke.json (strict mode: byte-reproducible, no wall-clock
# fields).
bench-json:
	dune exec bench/main.exe -- --quick \
	  --experiment table1,fig7,concurrency-sweep,prefix-sweep,quorum-sweep,scale-sweep \
	  --json-out BENCH_smoke.json

# Refresh the committed regression-gate baseline.  Run this (and commit
# the result) after an intentional perf change or a compiler bump —
# allocation counts are exact per compiler version, not portable
# across them.
bench-baseline:
	dune exec bench/main.exe -- --quick \
	  --experiment table1,fig7,concurrency-sweep,prefix-sweep,quorum-sweep,scale-sweep \
	  --json-out bench/baseline/BENCH_baseline.json

# Reduced-scale reproduction smoke + regression gate: emit the report,
# then compare against the committed baseline.  Non-zero exit iff a
# metric regressed beyond its threshold or lost coverage.
bench-smoke: bench-json
	dune exec bin/benchdiff.exe -- bench/baseline/BENCH_baseline.json BENCH_smoke.json

# Scale smoke: the quick scale-sweep ladder (tops out at 10^5 nodes,
# 4 shards, deterministic allocation profile) plus a sharded CLI run
# checked byte-identical across worker-domain counts — the cheap
# stand-in for the committed million-node report
# (bench/baseline/BENCH_scale.json, regenerated with `dune exec
# bench/main.exe -- --experiment scale-sweep --json-out
# bench/baseline/BENCH_scale.json` at paper scale).
bench-scale:
	dune exec bench/main.exe -- --quick --experiment scale-sweep \
	  --json-out BENCH_scale_smoke.json
	dune exec bin/p2pindex_cli.exe -- simulate --nodes 100000 --articles 20000 \
	  --queries 100000 --shards 4 --domains 1 > _build/scale_d1.txt
	dune exec bin/p2pindex_cli.exe -- simulate --nodes 100000 --articles 20000 \
	  --queries 100000 --shards 4 --domains 4 > _build/scale_d4.txt
	cmp _build/scale_d1.txt _build/scale_d4.txt

# Fault-injection suite: the fault/RPC/quorum tests plus seeded smoke
# runs (deterministic, so CI diffs are meaningful) — the fault sweep,
# and a quorum-under-faults run combining message loss with churn at
# R = W = 2 to exercise read repair and under-acknowledged writes.
chaos: build
	dune exec test/test_main.exe -- test faults
	dune exec test/test_main.exe -- test dht:rpc
	dune exec test/test_main.exe -- test quorum
	dune exec bench/main.exe -- --quick --experiment fault-sweep
	dune exec bin/p2pindex_cli.exe -- simulate --nodes 100 --articles 800 \
	  --queries 6000 --churn-rate 0.01 --replication 3 --loss-rate 0.05 \
	  --rpc-retries 2 --read-quorum 2 --write-quorum 2 --anti-entropy-interval 25

clean:
	dune clean

# Developer entry points; `make dev` is what CI should run.

.PHONY: dev build test bench-smoke chaos clean

dev: build test bench-smoke

build:
	dune build @all

test:
	dune runtest

bench-smoke:
	dune exec bench/main.exe -- --quick --experiment table1

# Fault-injection suite: the fault/RPC tests plus a seeded fault-sweep
# smoke run (deterministic, so CI diffs are meaningful).
chaos: build
	dune exec test/test_main.exe -- test faults
	dune exec test/test_main.exe -- test dht:rpc
	dune exec bench/main.exe -- --quick --experiment fault-sweep

clean:
	dune clean
